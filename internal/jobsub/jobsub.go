// Package jobsub implements the job submission Web Services of Section
// 3.1, all three variants the paper describes:
//
//   - GlobusrunService (the SDSC flavour): a GSI-authenticated SOAP facade
//     over the grid gatekeeper, exposing "two different methods for job
//     execution, one that accepts the parameters of a job as a set of
//     plain strings and returns the results as a string, and one that
//     accepts an XML definition of a job" whose DTD "was designed to allow
//     multiple jobs to be included in a single XML string"; multi-job
//     requests execute sequentially.
//
//   - BatchJobService: "a method that takes string arguments that define
//     the host and batch scheduler commands to be run"; it parses those
//     strings and "uses the Globusrun job submission service previously
//     described to submit the job" — a Web Service using another Web
//     Service, the paper's service-composition demonstration.
//
//   - WebFlowBridgeService (the IU flavour): "a wrapper around a client
//     for the legacy CORBA-based WebFlow system", bridging SOAP to the
//     mini-ORB.
package jobsub

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/soap"
	"repro/internal/webflow"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// GlobusrunNS is the Globusrun service namespace.
const GlobusrunNS = "urn:gce:globusrun"

// GlobusrunContract returns the Globusrun WSDL interface.
func GlobusrunContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "Globusrun",
		TargetNS: GlobusrunNS,
		Doc:      "Secure, authenticated job execution on remote computational resources over the Grid.",
		Operations: []wsdl.Operation{
			{
				Name: "run",
				Doc:  "Runs one job described by plain strings; blocks and returns its output.",
				Input: []wsdl.Param{
					{Name: "host", Type: "string"},
					{Name: "rsl", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "output", Type: "string"}},
			},
			{
				Name:   "runXML",
				Doc:    "Runs one or more jobs from an XML job request, sequentially, returning XML results.",
				Input:  []wsdl.Param{{Name: "request", Type: "xml"}},
				Output: []wsdl.Param{{Name: "results", Type: "xml"}},
			},
			{
				Name: "submit",
				Doc:  "Submits one job asynchronously and returns its contact string.",
				Input: []wsdl.Param{
					{Name: "host", Type: "string"},
					{Name: "rsl", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "contact", Type: "string"}},
			},
			{
				Name: "status",
				Input: []wsdl.Param{
					{Name: "host", Type: "string"},
					{Name: "contact", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "state", Type: "string"}},
			},
		},
	}
}

// principalOf resolves the acting grid principal: the verified SAML
// principal when the SPP authenticates requests, else the configured
// default (unauthenticated deployments, e.g. the GCE testbed exercises).
func principalOf(ctx *core.Context, def string) string {
	if ctx.Principal != "" {
		return ctx.Principal
	}
	return def
}

// NewGlobusrunService builds the deployable Globusrun service over a grid.
// defaultPrincipal is used for unauthenticated calls; pass "" to require a
// verified principal on every call.
func NewGlobusrunService(g *grid.Grid, defaultPrincipal string) *core.Service {
	svc := core.NewService(GlobusrunContract())
	requirePrincipal := func(ctx *core.Context) (string, error) {
		p := principalOf(ctx, defaultPrincipal)
		if p == "" {
			return "", soap.NewPortalError("Globusrun", soap.ErrCodeAuthFailed,
				"no authenticated principal and no default configured")
		}
		return p, nil
	}
	svc.Handle("run", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		p, err := requirePrincipal(ctx)
		if err != nil {
			return nil, err
		}
		gk, err := g.Gatekeeper(args.String("host"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeNoSuchResource, "%v", err)
		}
		job, err := gk.Run(p, args.String("rsl"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeJobFailed, "%v", err)
		}
		if job.State != grid.StateCompleted {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeJobFailed,
				"job %s: %s (%s)", job.ID, job.State, job.Reason)
		}
		return []soap.Value{soap.Str("output", job.Result.Stdout)}, nil
	})
	svc.Handle("runXML", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		p, err := requirePrincipal(ctx)
		if err != nil {
			return nil, err
		}
		req := args.XML("request")
		if req == nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeBadRequest, "missing job request document")
		}
		jobs, err := ParseJobRequest(req)
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeBadRequest, "%v", err)
		}
		results := xmlutil.New("jobResults")
		// Sequential execution, as the paper specifies.
		for i, jr := range jobs {
			results.Add(runOne(g, p, i, jr))
		}
		return []soap.Value{soap.XMLDoc("results", results)}, nil
	})
	svc.Handle("submit", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		p, err := requirePrincipal(ctx)
		if err != nil {
			return nil, err
		}
		gk, err := g.Gatekeeper(args.String("host"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeNoSuchResource, "%v", err)
		}
		contact, err := gk.Submit(p, args.String("rsl"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeJobFailed, "%v", err)
		}
		return []soap.Value{soap.Str("contact", contact)}, nil
	})
	svc.Handle("status", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		if _, err := requirePrincipal(ctx); err != nil {
			return nil, err
		}
		gk, err := g.Gatekeeper(args.String("host"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeNoSuchResource, "%v", err)
		}
		job, err := gk.Status(args.String("contact"))
		if err != nil {
			return nil, soap.NewPortalError("Globusrun", soap.ErrCodeNoSuchResource, "%v", err)
		}
		return []soap.Value{soap.Str("state", string(job.State))}, nil
	})
	return svc
}

func runOne(g *grid.Grid, principal string, index int, jr JobRequest) *xmlutil.Element {
	el := xmlutil.New("jobResult").SetAttr("index", strconv.Itoa(index))
	fail := func(format string, a ...interface{}) *xmlutil.Element {
		el.AddText("state", string(grid.StateFailed))
		el.AddText("error", fmt.Sprintf(format, a...))
		return el
	}
	gk, err := g.Gatekeeper(jr.Host)
	if err != nil {
		return fail("%v", err)
	}
	job, err := gk.Run(principal, grid.FormatRSL(jr.Spec))
	if err != nil {
		return fail("%v", err)
	}
	el.AddText("state", string(job.State))
	el.AddText("jobID", job.ID)
	el.AddText("stdout", job.Result.Stdout)
	el.AddText("stderr", job.Result.Stderr)
	el.AddText("exitCode", strconv.Itoa(job.Result.ExitCode))
	if job.Reason != "" {
		el.AddText("error", job.Reason)
	}
	return el
}

// JobRequest is one job inside the XML multi-job DTD.
type JobRequest struct {
	// Host is the target machine.
	Host string
	// Spec is the job specification.
	Spec grid.JobSpec
}

// BuildJobRequest renders one or more job requests into the DTD's
// <jobRequest> document.
func BuildJobRequest(jobs []JobRequest) *xmlutil.Element {
	root := xmlutil.New("jobRequest")
	for _, jr := range jobs {
		j := xmlutil.New("job")
		j.AddText("host", jr.Host)
		j.AddText("executable", jr.Spec.Executable)
		for _, a := range jr.Spec.Args {
			j.AddText("argument", a)
		}
		if jr.Spec.Stdin != "" {
			j.AddText("stdin", jr.Spec.Stdin)
		}
		if jr.Spec.Queue != "" {
			j.AddText("queue", jr.Spec.Queue)
		}
		if jr.Spec.Nodes > 1 {
			j.AddText("count", strconv.Itoa(jr.Spec.Nodes))
		}
		if jr.Spec.WallTime > 0 {
			j.AddText("maxWallTime", strconv.Itoa(int(jr.Spec.WallTime/time.Minute)))
		}
		if jr.Spec.Name != "" {
			j.AddText("jobName", jr.Spec.Name)
		}
		root.Add(j)
	}
	return root
}

// ParseJobRequest parses a <jobRequest> document into its jobs.
func ParseJobRequest(root *xmlutil.Element) ([]JobRequest, error) {
	if root.Name != "jobRequest" {
		return nil, fmt.Errorf("jobsub: root element %q is not jobRequest", root.Name)
	}
	jobEls := root.ChildrenNamed("job")
	if len(jobEls) == 0 {
		return nil, fmt.Errorf("jobsub: request contains no jobs")
	}
	var out []JobRequest
	for i, j := range jobEls {
		jr := JobRequest{Host: j.ChildText("host")}
		if jr.Host == "" {
			return nil, fmt.Errorf("jobsub: job %d has no host", i)
		}
		jr.Spec.Executable = j.ChildText("executable")
		if jr.Spec.Executable == "" {
			return nil, fmt.Errorf("jobsub: job %d has no executable", i)
		}
		for _, a := range j.ChildrenNamed("argument") {
			jr.Spec.Args = append(jr.Spec.Args, a.Text)
		}
		jr.Spec.Stdin = j.ChildText("stdin")
		jr.Spec.Queue = j.ChildText("queue")
		jr.Spec.Name = j.ChildText("jobName")
		jr.Spec.Nodes = 1
		if c := j.Child("count"); c != nil {
			n, err := c.Int()
			if err != nil {
				return nil, fmt.Errorf("jobsub: job %d: bad count: %v", i, err)
			}
			jr.Spec.Nodes = n
		}
		if w := j.Child("maxWallTime"); w != nil {
			mins, err := w.Int()
			if err != nil {
				return nil, fmt.Errorf("jobsub: job %d: bad maxWallTime: %v", i, err)
			}
			jr.Spec.WallTime = time.Duration(mins) * time.Minute
		}
		out = append(out, jr)
	}
	return out, nil
}

// JobResult is one decoded entry of the XML results document.
type JobResult struct {
	// Index is the job's position in the request.
	Index int
	// State is the final lifecycle state.
	State grid.JobState
	// JobID is the scheduler ID (empty on pre-submission failure).
	JobID string
	// Stdout and Stderr are the captured streams.
	Stdout string
	Stderr string
	// ExitCode is the program exit status.
	ExitCode int
	// Error describes a failure.
	Error string
}

// ParseJobResults decodes the service's <jobResults> document.
func ParseJobResults(root *xmlutil.Element) ([]JobResult, error) {
	if root.Name != "jobResults" {
		return nil, fmt.Errorf("jobsub: root element %q is not jobResults", root.Name)
	}
	var out []JobResult
	for _, el := range root.ChildrenNamed("jobResult") {
		r := JobResult{
			State:  grid.JobState(el.ChildText("state")),
			JobID:  el.ChildText("jobID"),
			Stdout: el.ChildText("stdout"),
			Stderr: el.ChildText("stderr"),
			Error:  el.ChildText("error"),
		}
		r.Index, _ = strconv.Atoi(el.AttrDefault("index", "0"))
		if ec := el.Child("exitCode"); ec != nil {
			r.ExitCode, _ = ec.Int()
		}
		out = append(out, r)
	}
	return out, nil
}

// GlobusrunClient is a typed proxy to a Globusrun service.
type GlobusrunClient struct {
	c *core.Client
}

// NewGlobusrunClient binds to a Globusrun endpoint.
func NewGlobusrunClient(t soap.Transport, endpoint string) *GlobusrunClient {
	return &GlobusrunClient{c: core.NewClient(t, endpoint, GlobusrunContract())}
}

// Use adds a client interceptor (e.g. a SAML-attaching session).
func (cl *GlobusrunClient) Use(i core.ClientInterceptor) *GlobusrunClient {
	cl.c.Use(i)
	return cl
}

// Run executes one job synchronously and returns its stdout.
func (cl *GlobusrunClient) Run(host, rsl string) (string, error) {
	return cl.c.CallText("run", soap.Str("host", host), soap.Str("rsl", rsl))
}

// RunXML executes a multi-job request and returns the decoded results.
func (cl *GlobusrunClient) RunXML(jobs []JobRequest) ([]JobResult, error) {
	doc, err := cl.c.CallXML("runXML", soap.XMLDoc("request", BuildJobRequest(jobs)))
	if err != nil {
		return nil, err
	}
	return ParseJobResults(doc)
}

// Submit starts a job asynchronously.
func (cl *GlobusrunClient) Submit(host, rsl string) (string, error) {
	return cl.c.CallText("submit", soap.Str("host", host), soap.Str("rsl", rsl))
}

// Status polls a job by contact.
func (cl *GlobusrunClient) Status(host, contact string) (grid.JobState, error) {
	s, err := cl.c.CallText("status", soap.Str("host", host), soap.Str("contact", contact))
	return grid.JobState(s), err
}

// --- Batch job service (service composition) ---------------------------------

// BatchJobNS is the batch job service namespace.
const BatchJobNS = "urn:gce:batchjob"

// BatchJobContract returns the batch job submission interface: one method
// taking the host and scheduler command strings.
func BatchJobContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "BatchJobSubmission",
		TargetNS: BatchJobNS,
		Doc:      "Submits batch jobs described by scheduler command strings; delegates to the Globusrun Web Service.",
		Operations: []wsdl.Operation{{
			Name: "submitBatch",
			Doc:  "Parses host and scheduler command strings and runs the job via Globusrun.",
			Input: []wsdl.Param{
				{Name: "host", Type: "string"},
				{Name: "command", Type: "string"},
			},
			Output: []wsdl.Param{{Name: "output", Type: "string"}},
		}},
	}
}

// ParseSchedulerCommand parses a qsub/bsub-flavoured command string of the
// form "[-q queue] [-n nodes] [-w minutes] executable [args...]" into RSL.
func ParseSchedulerCommand(command string) (string, error) {
	fields := strings.Fields(command)
	spec := grid.JobSpec{Nodes: 1}
	i := 0
	for i < len(fields) {
		switch fields[i] {
		case "-q":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -q requires a queue name")
			}
			spec.Queue = fields[i+1]
			i += 2
		case "-n":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -n requires a node count")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return "", fmt.Errorf("jobsub: bad node count %q", fields[i+1])
			}
			spec.Nodes = n
			i += 2
		case "-w":
			if i+1 >= len(fields) {
				return "", fmt.Errorf("jobsub: -w requires minutes")
			}
			mins, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return "", fmt.Errorf("jobsub: bad walltime %q", fields[i+1])
			}
			spec.WallTime = time.Duration(mins) * time.Minute
			i += 2
		default:
			spec.Executable = fields[i]
			spec.Args = fields[i+1:]
			i = len(fields)
		}
	}
	if spec.Executable == "" {
		return "", fmt.Errorf("jobsub: command %q has no executable", command)
	}
	return grid.FormatRSL(spec), nil
}

// NewBatchJobService builds the batch job service delegating to a Globusrun
// client — the inter-service call the paper demonstrates.
func NewBatchJobService(globusrun *GlobusrunClient) *core.Service {
	svc := core.NewService(BatchJobContract())
	svc.Handle("submitBatch", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		rsl, err := ParseSchedulerCommand(args.String("command"))
		if err != nil {
			return nil, soap.NewPortalError("BatchJobSubmission", soap.ErrCodeBadRequest, "%v", err)
		}
		out, err := globusrun.Run(args.String("host"), rsl)
		if err != nil {
			if pe := soap.AsPortalError(err); pe != nil {
				return nil, pe
			}
			return nil, soap.NewPortalError("BatchJobSubmission", soap.ErrCodeJobFailed, "%v", err)
		}
		return []soap.Value{soap.Str("output", out)}, nil
	})
	return svc
}

// BatchJobClient is a typed proxy to the batch job service.
type BatchJobClient struct {
	c *core.Client
}

// NewBatchJobClient binds to a batch job service endpoint.
func NewBatchJobClient(t soap.Transport, endpoint string) *BatchJobClient {
	return &BatchJobClient{c: core.NewClient(t, endpoint, BatchJobContract())}
}

// SubmitBatch submits a scheduler command string.
func (cl *BatchJobClient) SubmitBatch(host, command string) (string, error) {
	return cl.c.CallText("submitBatch", soap.Str("host", host), soap.Str("command", command))
}

// --- WebFlow bridge service (IU flavour) --------------------------------------

// WebFlowBridgeNS is the IU bridge service namespace.
const WebFlowBridgeNS = "urn:gce:webflow-jobsub"

// WebFlowBridgeContract returns the IU job submission interface: the SOAP
// server methods "wrapped the existing WebFlow methods".
func WebFlowBridgeContract() *wsdl.Interface {
	return &wsdl.Interface{
		Name:     "WebFlowJobSubmission",
		TargetNS: WebFlowBridgeNS,
		Doc:      "SOAP wrapper around the legacy CORBA-based WebFlow job submission module.",
		Operations: []wsdl.Operation{
			{
				Name: "runJob",
				Input: []wsdl.Param{
					{Name: "host", Type: "string"},
					{Name: "rsl", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "output", Type: "string"}},
			},
			{
				Name: "submitJob",
				Input: []wsdl.Param{
					{Name: "host", Type: "string"},
					{Name: "rsl", Type: "string"},
				},
				Output: []wsdl.Param{{Name: "contact", Type: "string"}},
			},
		},
	}
}

// NewWebFlowBridgeService builds the SOAP-to-ORB bridge: it initialises a
// client ORB, resolves the WebFlow job submission module, and forwards.
func NewWebFlowBridgeService(orb *webflow.ORB, moduleIOR, defaultPrincipal string) (*core.Service, error) {
	ref, err := orb.Resolve(moduleIOR)
	if err != nil {
		return nil, err
	}
	svc := core.NewService(WebFlowBridgeContract())
	svc.Handle("runJob", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		p := principalOf(ctx, defaultPrincipal)
		res, err := ref.Invoke("runJob", p, args.String("host"), args.String("rsl"))
		if err != nil {
			return nil, soap.NewPortalError("WebFlowJobSubmission", soap.ErrCodeJobFailed, "%v", err)
		}
		if len(res) < 2 || res[0] != string(grid.StateCompleted) {
			return nil, soap.NewPortalError("WebFlowJobSubmission", soap.ErrCodeJobFailed,
				"webflow job state %v", res)
		}
		return []soap.Value{soap.Str("output", res[1])}, nil
	})
	svc.Handle("submitJob", func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		p := principalOf(ctx, defaultPrincipal)
		res, err := ref.Invoke("submitJob", p, args.String("host"), args.String("rsl"))
		if err != nil {
			return nil, soap.NewPortalError("WebFlowJobSubmission", soap.ErrCodeJobFailed, "%v", err)
		}
		return []soap.Value{soap.Str("contact", res[0])}, nil
	})
	return svc, nil
}
