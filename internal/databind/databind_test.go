package databind

import (
	"strings"
	"testing"
)

// appSchema is a reduced application-descriptor schema exercising all four
// wizard constituent types.
const appSchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:gce:app">
  <xs:element name="application">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string">
          <xs:annotation><xs:documentation>Application name</xs:documentation></xs:annotation>
        </xs:element>
        <xs:element name="version" type="xs:string" default="1.0"/>
        <xs:element name="nodes" type="xs:int"/>
        <xs:element name="parallel" type="xs:boolean" minOccurs="0"/>
        <xs:element name="method">
          <xs:simpleType>
            <xs:restriction base="xs:string">
              <xs:enumeration value="HF"/>
              <xs:enumeration value="B3LYP"/>
              <xs:enumeration value="MP2"/>
            </xs:restriction>
          </xs:simpleType>
        </xs:element>
        <xs:element name="flag" type="xs:string" maxOccurs="unbounded" minOccurs="0"/>
        <xs:element name="execution">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="host" type="xs:string"/>
              <xs:element name="queue" type="xs:string" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func parseAppSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseSchema(appSchema)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSchemaSOM(t *testing.T) {
	s := parseAppSchema(t)
	if s.TargetNS != "urn:gce:app" {
		t.Errorf("ns = %q", s.TargetNS)
	}
	app := s.Root("application")
	if app == nil || app.Kind != KindComplex {
		t.Fatalf("application = %+v", app)
	}
	if s.Root("missing") != nil {
		t.Error("phantom root")
	}
	cases := []struct {
		name string
		kind Kind
		typ  string
	}{
		{"name", KindSimple, "string"},
		{"nodes", KindSimple, "int"},
		{"parallel", KindSimple, "boolean"},
		{"method", KindEnumerated, "string"},
		{"flag", KindUnbounded, "string"},
		{"execution", KindComplex, ""},
	}
	for _, tc := range cases {
		d := app.Child(tc.name)
		if d == nil {
			t.Errorf("%s missing", tc.name)
			continue
		}
		if d.Kind != tc.kind || d.Type != tc.typ {
			t.Errorf("%s = kind %s type %q, want %s %q", tc.name, d.Kind, d.Type, tc.kind, tc.typ)
		}
	}
	if app.Child("name").Doc != "Application name" {
		t.Errorf("doc = %q", app.Child("name").Doc)
	}
	if app.Child("version").Default != "1.0" {
		t.Errorf("default = %q", app.Child("version").Default)
	}
	if app.Child("parallel").MinOccurs != 0 {
		t.Error("parallel should be optional")
	}
	if m := app.Child("method"); len(m.Enum) != 3 || m.Enum[1] != "B3LYP" {
		t.Errorf("enum = %v", m.Enum)
	}
	if got := app.CountDecls(); got != 10 {
		t.Errorf("CountDecls = %d", got)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []string{
		"garbage",
		"<notschema/>",
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x" type="xs:duration"/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x" maxOccurs="5" type="xs:string"/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x" minOccurs="7" type="xs:string"/></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x"><xs:simpleType/></xs:element></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x"><xs:simpleType><xs:restriction base="xs:string"/></xs:simpleType></xs:element></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="x"><xs:complexType/></xs:element></xs:schema>`,
	}
	for i, doc := range bad {
		if _, err := ParseSchema(doc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDataObjectScalarValidation(t *testing.T) {
	s := parseAppSchema(t)
	app := NewDataObject(s.Root("application"))
	if err := app.SetField("nodes", "16"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetField("nodes", "lots"); err == nil {
		t.Error("non-int accepted")
	}
	if err := app.SetField("parallel", "true"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetField("parallel", "maybe"); err == nil {
		t.Error("non-bool accepted")
	}
	if err := app.SetField("method", "B3LYP"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetField("method", "CCSD"); err == nil {
		t.Error("out-of-enum accepted")
	}
	if err := app.SetField("ghost", "x"); err == nil {
		t.Error("undeclared field accepted")
	}
	if app.GetField("version") != "1.0" {
		t.Errorf("default = %q", app.GetField("version"))
	}
}

func TestDataObjectUnbounded(t *testing.T) {
	s := parseAppSchema(t)
	app := NewDataObject(s.Root("application"))
	_ = app.AddFieldValue("flag", "-direct")
	_ = app.AddFieldValue("flag", "-nosym")
	if got := app.FieldValues("flag"); len(got) != 2 || got[1] != "-nosym" {
		t.Errorf("flags = %v", got)
	}
	// Add on a non-unbounded field fails.
	if err := app.AddFieldValue("name", "x"); err == nil {
		t.Error("Add on simple field accepted")
	}
	// Set on an unbounded field fails.
	f, _ := app.Field("flag")
	if err := f.Set("x"); err == nil {
		t.Error("Set on unbounded accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := parseAppSchema(t)
	app := NewDataObject(s.Root("application"))
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(app.SetField("name", "gaussian"))
	must(app.SetField("nodes", "8"))
	must(app.SetField("method", "HF"))
	must(app.AddFieldValue("flag", "-direct"))
	must(app.AddFieldValue("flag", "-nosym"))
	exec, err := app.Field("execution")
	must(err)
	must(exec.SetField("host", "modi4.ncsa.uiuc.edu"))
	must(exec.SetField("queue", "batch"))

	el := app.Marshal()
	if el.ChildText("name") != "gaussian" {
		t.Errorf("marshal name = %q", el.ChildText("name"))
	}
	if len(el.ChildrenNamed("flag")) != 2 {
		t.Errorf("marshal flags = %d", len(el.ChildrenNamed("flag")))
	}
	if el.FindText("execution/host") != "modi4.ncsa.uiuc.edu" {
		t.Errorf("marshal host = %q", el.FindText("execution/host"))
	}

	back, err := Unmarshal(s.Root("application"), el)
	must(err)
	if back.GetField("name") != "gaussian" || back.GetField("nodes") != "8" {
		t.Errorf("unmarshal fields wrong")
	}
	if got := back.FieldValues("flag"); len(got) != 2 || got[0] != "-direct" {
		t.Errorf("unmarshal flags = %v", got)
	}
	e2, err := back.Field("execution")
	must(err)
	if e2.GetField("queue") != "batch" {
		t.Errorf("unmarshal queue = %q", e2.GetField("queue"))
	}
	// Marshal is stable across the round trip.
	if back.Marshal().Render() != el.Render() {
		t.Errorf("marshal not stable:\n%s\nvs\n%s", back.Marshal().Render(), el.Render())
	}
}

func TestUnmarshalValidation(t *testing.T) {
	s := parseAppSchema(t)
	decl := s.Root("application")
	ok := NewDataObject(decl)
	_ = ok.SetField("name", "x")
	_ = ok.SetField("nodes", "1")
	_ = ok.SetField("method", "HF")
	exec, _ := ok.Field("execution")
	_ = exec.SetField("host", "h")
	el := ok.Marshal()

	// Wrong element name.
	if _, err := Unmarshal(decl, el.Clone().SetAttr("x", "y")); err != nil {
		t.Errorf("attr should not break unmarshal: %v", err)
	}
	bad := el.Clone()
	bad.Name = "wrong"
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("wrong name accepted")
	}
	// Undeclared child.
	bad = el.Clone()
	bad.AddText("rogue", "x")
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("undeclared child accepted")
	}
	// Repeated singleton.
	bad = el.Clone()
	bad.AddText("name", "again")
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("repeated singleton accepted")
	}
	// Missing required child.
	bad = el.Clone()
	for i, c := range bad.Children {
		if c.Name == "name" {
			bad.Children = append(bad.Children[:i], bad.Children[i+1:]...)
			break
		}
	}
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("missing required child accepted")
	}
	// Bad enum value.
	bad = el.Clone()
	bad.Child("method").Text = "CCSD"
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("bad enum accepted")
	}
	// Bad int.
	bad = el.Clone()
	bad.Child("nodes").Text = "NaN"
	if _, err := Unmarshal(decl, bad); err == nil {
		t.Error("bad int accepted")
	}
}

// TestAccessorExplosion pins the S5.2 observation: the generated accessor
// interface is far larger than the adapter facade a practical WSDL needs.
func TestAccessorExplosion(t *testing.T) {
	s := parseAppSchema(t)
	accessors := AccessorNames(s.Root("application"))
	if len(accessors) < 18 {
		t.Errorf("accessors = %d (%v), expected the full bean explosion", len(accessors), accessors)
	}
	// Spot checks on the naming convention.
	joined := strings.Join(accessors, ",")
	for _, want := range []string{"getApplication", "setName", "addFlag", "getFlagList", "getExecution", "setHost"} {
		if !strings.Contains(joined, want) {
			t.Errorf("accessor %s missing in %v", want, accessors)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindSimple.String() != "simple" || KindEnumerated.String() != "enumerated" ||
		KindUnbounded.String() != "unboundedSimple" || KindComplex.String() != "complex" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}
