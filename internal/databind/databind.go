// Package databind is the Castor analog of Section 5: an XML Schema
// (XSD subset) parser producing a Schema Object Model (SOM), and dynamic
// data-bound objects generated from the SOM with typed get/set accessors
// and XML marshalling. Castor generated one JavaBean class per schema
// element and compiled it; Go cannot compile at runtime, so DataObject
// provides the same contract dynamically — each schema element yields an
// object with accessors for its fields, validation against the declared
// types, and marshal/unmarshal to schema instances.
//
// The XSD subset covers exactly what the schema wizard's four templated
// constituent types need (Section 5.3): single simple types, enumerated
// simple types, unbounded simple types, and complex types.
package databind

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmlutil"
)

// XSDNS is the XML Schema namespace.
const XSDNS = "http://www.w3.org/2001/XMLSchema"

// Kind classifies an element declaration into the wizard's four templated
// constituent types.
type Kind int

// The four schema constituent types the wizard templates handle.
const (
	// KindSimple is a single-valued builtin-typed element.
	KindSimple Kind = iota
	// KindEnumerated is a single-valued element restricted to a value set.
	KindEnumerated
	// KindUnbounded is a repeated simple element (maxOccurs="unbounded").
	KindUnbounded
	// KindComplex is an element with child elements.
	KindComplex
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSimple:
		return "simple"
	case KindEnumerated:
		return "enumerated"
	case KindUnbounded:
		return "unboundedSimple"
	case KindComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// ElementDecl is one element declaration in the SOM.
type ElementDecl struct {
	// Name is the element name.
	Name string
	// Doc is the xs:annotation/xs:documentation text.
	Doc string
	// Type is the builtin type local name for simple kinds ("string",
	// "int", "boolean", "double"); empty for complex.
	Type string
	// Kind classifies the declaration.
	Kind Kind
	// Enum lists the permitted values for KindEnumerated.
	Enum []string
	// Default is the default value for simple kinds.
	Default string
	// MinOccurs is 0 or 1 (optionality).
	MinOccurs int
	// Unbounded marks maxOccurs="unbounded".
	Unbounded bool
	// Children are the child declarations for KindComplex, in order.
	Children []*ElementDecl
}

// Child returns the named child declaration, or nil.
func (d *ElementDecl) Child(name string) *ElementDecl {
	for _, c := range d.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// CountDecls returns the number of declarations in the subtree.
func (d *ElementDecl) CountDecls() int {
	n := 1
	for _, c := range d.Children {
		n += c.CountDecls()
	}
	return n
}

// Schema is the Schema Object Model: the root element declarations of one
// schema document.
type Schema struct {
	// TargetNS is the schema's target namespace.
	TargetNS string
	// Roots are the top-level element declarations.
	Roots []*ElementDecl
}

// Root returns the named top-level declaration, or nil.
func (s *Schema) Root(name string) *ElementDecl {
	for _, r := range s.Roots {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// builtinTypes are the supported xs: simple types.
var builtinTypes = map[string]bool{
	"string": true, "int": true, "integer": true, "boolean": true,
	"double": true, "float": true, "decimal": true, "anyURI": true,
}

func localType(qname string) string {
	if i := strings.LastIndex(qname, ":"); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// ParseSchema parses an XSD-subset document into the SOM.
func ParseSchema(doc string) (*Schema, error) {
	root, err := xmlutil.ParseString(doc)
	if err != nil {
		return nil, fmt.Errorf("databind: %w", err)
	}
	if root.Name != "schema" {
		return nil, fmt.Errorf("databind: root element %q is not schema", root.Name)
	}
	s := &Schema{TargetNS: root.AttrDefault("targetNamespace", "")}
	for _, el := range root.ChildrenNamed("element") {
		decl, err := parseElement(el)
		if err != nil {
			return nil, err
		}
		s.Roots = append(s.Roots, decl)
	}
	if len(s.Roots) == 0 {
		return nil, fmt.Errorf("databind: schema declares no elements")
	}
	return s, nil
}

func parseElement(el *xmlutil.Element) (*ElementDecl, error) {
	d := &ElementDecl{
		Name:      el.AttrDefault("name", ""),
		Default:   el.AttrDefault("default", ""),
		MinOccurs: 1,
	}
	if d.Name == "" {
		return nil, fmt.Errorf("databind: element without a name")
	}
	if v, ok := el.Attr("minOccurs"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 1 {
			return nil, fmt.Errorf("databind: element %s: unsupported minOccurs %q", d.Name, v)
		}
		d.MinOccurs = n
	}
	if v, ok := el.Attr("maxOccurs"); ok {
		switch v {
		case "1":
		case "unbounded":
			d.Unbounded = true
		default:
			return nil, fmt.Errorf("databind: element %s: unsupported maxOccurs %q", d.Name, v)
		}
	}
	if ann := el.Child("annotation"); ann != nil {
		d.Doc = ann.ChildText("documentation")
	}
	// Three body forms: type attribute, inline simpleType restriction, or
	// inline complexType sequence.
	typeAttr, hasType := el.Attr("type")
	switch {
	case hasType:
		t := localType(typeAttr)
		if !builtinTypes[t] {
			return nil, fmt.Errorf("databind: element %s: unsupported type %q", d.Name, typeAttr)
		}
		d.Type = t
		d.Kind = KindSimple
	case el.Child("simpleType") != nil:
		st := el.Child("simpleType")
		restr := st.Child("restriction")
		if restr == nil {
			return nil, fmt.Errorf("databind: element %s: simpleType without restriction", d.Name)
		}
		d.Type = localType(restr.AttrDefault("base", "xs:string"))
		if !builtinTypes[d.Type] {
			return nil, fmt.Errorf("databind: element %s: unsupported base %q", d.Name, d.Type)
		}
		for _, e := range restr.ChildrenNamed("enumeration") {
			d.Enum = append(d.Enum, e.AttrDefault("value", ""))
		}
		if len(d.Enum) == 0 {
			return nil, fmt.Errorf("databind: element %s: restriction without enumerations", d.Name)
		}
		d.Kind = KindEnumerated
	case el.Child("complexType") != nil:
		ct := el.Child("complexType")
		seq := ct.Child("sequence")
		if seq == nil {
			return nil, fmt.Errorf("databind: element %s: complexType without sequence", d.Name)
		}
		for _, childEl := range seq.ChildrenNamed("element") {
			child, err := parseElement(childEl)
			if err != nil {
				return nil, err
			}
			d.Children = append(d.Children, child)
		}
		d.Kind = KindComplex
	default:
		// No type information: default to string (XSD's anyType reduced).
		d.Type = "string"
		d.Kind = KindSimple
	}
	if d.Unbounded && d.Kind != KindComplex {
		d.Kind = KindUnbounded
	}
	if d.Unbounded && len(d.Children) > 0 {
		return nil, fmt.Errorf("databind: element %s: unbounded complex elements unsupported", d.Name)
	}
	return d, nil
}

// ValidateValue checks a scalar value against a builtin XSD type name
// ("int", "boolean", "double", ...; unknown types pass). The rpc kernel
// bridges through this when decoding typed operation parameters, so the
// wire layer and the schema wizard share one notion of XSD validity.
func ValidateValue(t, v string) error {
	return validateValue(t, v)
}

// validateValue checks a scalar against a builtin type.
func validateValue(t, v string) error {
	switch t {
	case "int", "integer":
		if _, err := strconv.Atoi(strings.TrimSpace(v)); err != nil {
			return fmt.Errorf("databind: %q is not an %s", v, t)
		}
	case "boolean":
		if _, err := strconv.ParseBool(strings.TrimSpace(v)); err != nil {
			return fmt.Errorf("databind: %q is not a boolean", v)
		}
	case "double", "float", "decimal":
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return fmt.Errorf("databind: %q is not a %s", v, t)
		}
	}
	return nil
}

// DataObject is a dynamic data binding for one element declaration — the
// runtime analog of a Castor-generated JavaBean.
type DataObject struct {
	// Decl is the bound declaration.
	Decl *ElementDecl

	scalar   string
	scalarOK bool
	repeated []string
	children map[string][]*DataObject
}

// NewDataObject creates an empty object for a declaration, applying
// defaults and recursively instantiating required complex children.
func NewDataObject(decl *ElementDecl) *DataObject {
	o := &DataObject{Decl: decl, children: map[string][]*DataObject{}}
	if decl.Default != "" {
		o.scalar = decl.Default
		o.scalarOK = true
	}
	if decl.Kind == KindComplex {
		for _, c := range decl.Children {
			needed := c.Kind == KindComplex && c.MinOccurs > 0 && !c.Unbounded
			defaulted := c.Default != "" && c.Kind != KindComplex && !c.Unbounded
			if needed || defaulted {
				o.children[c.Name] = []*DataObject{NewDataObject(c)}
			}
		}
	}
	return o
}

// Set assigns the scalar value of a simple or enumerated object.
func (o *DataObject) Set(value string) error {
	switch o.Decl.Kind {
	case KindSimple:
		if err := validateValue(o.Decl.Type, value); err != nil {
			return fmt.Errorf("element %s: %w", o.Decl.Name, err)
		}
	case KindEnumerated:
		ok := false
		for _, e := range o.Decl.Enum {
			if e == value {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("databind: element %s: %q not in enumeration %v", o.Decl.Name, value, o.Decl.Enum)
		}
	default:
		return fmt.Errorf("databind: element %s (%s) has no scalar value", o.Decl.Name, o.Decl.Kind)
	}
	o.scalar = value
	o.scalarOK = true
	return nil
}

// Get returns the scalar value (default when unset).
func (o *DataObject) Get() string {
	return o.scalar
}

// Add appends a value to an unbounded simple object.
func (o *DataObject) Add(value string) error {
	if o.Decl.Kind != KindUnbounded {
		return fmt.Errorf("databind: element %s is not unbounded", o.Decl.Name)
	}
	if err := validateValue(o.Decl.Type, value); err != nil {
		return fmt.Errorf("element %s: %w", o.Decl.Name, err)
	}
	o.repeated = append(o.repeated, value)
	return nil
}

// Values returns the repeated values of an unbounded object.
func (o *DataObject) Values() []string {
	return append([]string(nil), o.repeated...)
}

// SetField sets a simple/enumerated child field of a complex object,
// creating the child object as needed.
func (o *DataObject) SetField(name, value string) error {
	c, err := o.fieldObject(name)
	if err != nil {
		return err
	}
	return c.Set(value)
}

// GetField reads a child field's scalar value ("" when unset).
func (o *DataObject) GetField(name string) string {
	cs := o.children[name]
	if len(cs) == 0 {
		return ""
	}
	return cs[0].Get()
}

// AddFieldValue appends to an unbounded simple child field.
func (o *DataObject) AddFieldValue(name, value string) error {
	c, err := o.fieldObject(name)
	if err != nil {
		return err
	}
	return c.Add(value)
}

// FieldValues returns an unbounded child field's values.
func (o *DataObject) FieldValues(name string) []string {
	cs := o.children[name]
	if len(cs) == 0 {
		return nil
	}
	return cs[0].Values()
}

// Field returns the first child object with the given name, creating it if
// the declaration exists.
func (o *DataObject) Field(name string) (*DataObject, error) {
	return o.fieldObject(name)
}

// AddChild appends a new child object for an unbounded complex field...
// the subset forbids unbounded complex, so AddChild serves optional
// complex children instantiated on demand.
func (o *DataObject) fieldObject(name string) (*DataObject, error) {
	if o.Decl.Kind != KindComplex {
		return nil, fmt.Errorf("databind: element %s is not complex", o.Decl.Name)
	}
	decl := o.Decl.Child(name)
	if decl == nil {
		return nil, fmt.Errorf("databind: element %s has no field %q", o.Decl.Name, name)
	}
	if cs := o.children[name]; len(cs) > 0 {
		return cs[0], nil
	}
	c := NewDataObject(decl)
	o.children[name] = []*DataObject{c}
	return c, nil
}

// Marshal renders the object as a schema instance element.
func (o *DataObject) Marshal() *xmlutil.Element {
	el := xmlutil.New(o.Decl.Name)
	switch o.Decl.Kind {
	case KindSimple, KindEnumerated:
		el.Text = o.scalar
	case KindUnbounded:
		// An unbounded element marshals as repeated elements; the caller
		// (complex parent) handles that. Standalone, render values as
		// repeated <value> children.
		for _, v := range o.repeated {
			el.AddText("value", v)
		}
	case KindComplex:
		for _, cDecl := range o.Decl.Children {
			for _, c := range o.children[cDecl.Name] {
				if cDecl.Kind == KindUnbounded {
					for _, v := range c.Values() {
						el.AddText(cDecl.Name, v)
					}
				} else if cDecl.Kind == KindComplex || c.scalarOK {
					el.Add(c.Marshal())
				}
			}
		}
	}
	return el
}

// Unmarshal builds a data object from a schema instance element,
// validating structure and values against the declaration.
func Unmarshal(decl *ElementDecl, el *xmlutil.Element) (*DataObject, error) {
	if el.Name != decl.Name {
		return nil, fmt.Errorf("databind: element %q does not match declaration %q", el.Name, decl.Name)
	}
	o := &DataObject{Decl: decl, children: map[string][]*DataObject{}}
	switch decl.Kind {
	case KindSimple, KindEnumerated:
		if err := o.Set(el.Text); err != nil {
			return nil, err
		}
	case KindUnbounded:
		for _, v := range el.ChildrenNamed("value") {
			if err := o.Add(v.Text); err != nil {
				return nil, err
			}
		}
	case KindComplex:
		seen := map[string]bool{}
		for _, childEl := range el.Children {
			cDecl := decl.Child(childEl.Name)
			if cDecl == nil {
				return nil, fmt.Errorf("databind: element %s: undeclared child %q", decl.Name, childEl.Name)
			}
			if cDecl.Kind == KindUnbounded {
				c, err := o.fieldObject(cDecl.Name)
				if err != nil {
					return nil, err
				}
				if err := c.Add(childEl.Text); err != nil {
					return nil, err
				}
				seen[cDecl.Name] = true
				continue
			}
			if seen[cDecl.Name] {
				return nil, fmt.Errorf("databind: element %s: repeated child %q not declared unbounded", decl.Name, childEl.Name)
			}
			seen[cDecl.Name] = true
			c, err := Unmarshal(cDecl, childEl)
			if err != nil {
				return nil, err
			}
			o.children[cDecl.Name] = []*DataObject{c}
		}
		for _, cDecl := range decl.Children {
			if cDecl.MinOccurs > 0 && !seen[cDecl.Name] && cDecl.Kind != KindUnbounded {
				// A declared default satisfies requiredness.
				if cDecl.Default != "" {
					c := NewDataObject(cDecl)
					o.children[cDecl.Name] = []*DataObject{c}
					continue
				}
				return nil, fmt.Errorf("databind: element %s: required child %q missing", decl.Name, cDecl.Name)
			}
		}
	}
	return o, nil
}

// AccessorNames returns the bean-style accessor list a Castor source
// generation would have produced for a declaration (GetX/SetX per field,
// AddX for unbounded). The S5.2 experiment counts these to show why
// "converting all of the Castor methods to WSDL ... is not really a
// practical interface".
func AccessorNames(decl *ElementDecl) []string {
	var out []string
	var walk func(d *ElementDecl)
	walk = func(d *ElementDecl) {
		title := strings.ToUpper(d.Name[:1]) + d.Name[1:]
		switch d.Kind {
		case KindUnbounded:
			out = append(out, "add"+title, "get"+title+"List", "remove"+title, "clear"+title)
		case KindComplex:
			out = append(out, "get"+title, "set"+title)
			for _, c := range d.Children {
				walk(c)
			}
		default:
			out = append(out, "get"+title, "set"+title)
		}
	}
	walk(decl)
	return out
}
