package saml

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/xmlutil"
)

var testTime = time.Date(2002, 6, 1, 12, 0, 0, 0, time.UTC)

func contextPair(t *testing.T) (*gss.Context, *gss.Context) {
	t.Helper()
	kdc := gss.NewKDC("GRID.IU.EDU")
	kdc.AddPrincipal("cyoun", "pw")
	kdc.AddPrincipal("authsvc/host", "sk")
	creds, err := kdc.Login("cyoun", "pw", "authsvc/host")
	if err != nil {
		t.Fatal(err)
	}
	token, initiator, err := gss.InitContext(creds, testTime)
	if err != nil {
		t.Fatal(err)
	}
	kt, _ := kdc.Keytab("authsvc/host")
	acceptor, err := gss.AcceptContext(kt, token, testTime)
	if err != nil {
		t.Fatal(err)
	}
	return initiator, acceptor
}

func TestAssertionRoundTrip(t *testing.T) {
	a := New("ui-server", "cyoun", MethodKerberos, "authsess-1", testTime, 5*time.Minute)
	parsed, err := FromElement(a.Element())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != "cyoun" || parsed.Issuer != "ui-server" || parsed.SessionID != "authsess-1" {
		t.Errorf("parsed = %+v", parsed)
	}
	if !parsed.NotOnOrAfter.Equal(testTime.Add(5 * time.Minute)) {
		t.Errorf("NotOnOrAfter = %v", parsed.NotOnOrAfter)
	}
	if parsed.Method != MethodKerberos {
		t.Errorf("method = %q", parsed.Method)
	}
	if parsed.ID == "" || parsed.ID != a.ID {
		t.Errorf("id = %q vs %q", parsed.ID, a.ID)
	}
}

func TestSignVerify(t *testing.T) {
	initiator, acceptor := contextPair(t)
	a := New("ui-server", "cyoun", MethodKerberos, "s1", testTime, time.Minute)
	if err := a.VerifySignature(acceptor); !errors.Is(err, ErrUnsigned) {
		t.Errorf("unsigned err = %v", err)
	}
	a.Sign(initiator)
	if err := a.VerifySignature(acceptor); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Survives the wire.
	parsed, err := FromElement(a.Element())
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.VerifySignature(acceptor); err != nil {
		t.Errorf("signature broken by serialisation: %v", err)
	}
	// Tampering with the subject invalidates it.
	parsed.Subject = "intruder"
	if err := parsed.VerifySignature(acceptor); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered err = %v", err)
	}
}

func TestConditions(t *testing.T) {
	a := New("i", "s", MethodPassword, "x", testTime, time.Minute)
	if err := a.CheckConditions(testTime.Add(-time.Second)); !errors.Is(err, ErrNotYetValid) {
		t.Errorf("early err = %v", err)
	}
	if err := a.CheckConditions(testTime.Add(30 * time.Second)); err != nil {
		t.Errorf("in-window err = %v", err)
	}
	if err := a.CheckConditions(testTime.Add(time.Minute)); !errors.Is(err, ErrExpired) {
		t.Errorf("boundary err = %v (NotOnOrAfter is exclusive)", err)
	}
}

func TestFromElementErrors(t *testing.T) {
	if _, err := FromElement(xmlutil.New("NotAssertion")); err == nil {
		t.Error("wrong element accepted")
	}
	// Missing pieces.
	bad := New("i", "s", MethodKerberos, "x", testTime, time.Minute).Element()
	bad.Children = nil // drop Conditions and statement
	if _, err := FromElement(bad); err == nil {
		t.Error("assertion without conditions accepted")
	}
	noSubj := New("i", "s", MethodKerberos, "x", testTime, time.Minute).Element()
	stmt := noSubj.Child("AuthenticationStatement")
	stmt.Children = nil
	if _, err := FromElement(noSubj); err == nil {
		t.Error("assertion without subject accepted")
	}
	badTime := New("i", "s", MethodKerberos, "x", testTime, time.Minute).Element()
	badTime.SetAttr("IssueInstant", "not-a-time")
	if _, err := FromElement(badTime); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestEnvelopeAttachExtract(t *testing.T) {
	initiator, _ := contextPair(t)
	a := New("ui", "cyoun", MethodKerberos, "s1", testTime, time.Minute)
	a.Sign(initiator)
	env := soap.NewEnvelope().AddBody(xmlutil.New("op"))
	Attach(env, a)
	// Over the wire.
	parsedEnv, err := soap.ParseEnvelope(env.Render())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromEnvelope(parsedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Subject != "cyoun" || got.Signature != a.Signature {
		t.Errorf("extracted = %+v", got)
	}
	// Absent assertion is nil, nil.
	empty := soap.NewEnvelope().AddBody(xmlutil.New("op"))
	got, err = FromEnvelope(empty)
	if got != nil || err != nil {
		t.Errorf("empty = %+v, %v", got, err)
	}
}

func TestSignatureBoundToWindow(t *testing.T) {
	// Extending the validity window after signing breaks the signature:
	// conditions are covered by the MIC.
	initiator, acceptor := contextPair(t)
	a := New("ui", "cyoun", MethodKerberos, "s1", testTime, time.Minute)
	a.Sign(initiator)
	a.NotOnOrAfter = a.NotOnOrAfter.Add(time.Hour)
	if err := a.VerifySignature(acceptor); !errors.Is(err, ErrBadSignature) {
		t.Errorf("window extension err = %v", err)
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		a := New("i", "s", MethodKerberos, "x", testTime, time.Minute)
		if seen[a.ID] {
			t.Fatalf("duplicate assertion ID %q", a.ID)
		}
		seen[a.ID] = true
	}
}
