// Package saml implements the Security Assertion Markup Language subset of
// Section 4: mechanism-independent, digitally signed claims about
// authentication. Assertions carry an authentication statement, validity
// conditions, and a signature computed with the GSS-API MIC primitive
// (matching the paper's "signing methods based on the GSS API wrap and
// unwrap methods"). Assertions ride in SOAP headers; the helpers here
// attach them to and extract them from envelopes.
package saml

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/xmlutil"
)

// AssertionNS is the SAML 1.0 assertion namespace.
const AssertionNS = "urn:oasis:names:tc:SAML:1.0:assertion"

// Authentication method identifiers.
const (
	MethodKerberos = "urn:ietf:rfc:1510" // Kerberos per SAML 1.0
	MethodPassword = "urn:oasis:names:tc:SAML:1.0:am:password"
)

// Errors returned by assertion validation.
var (
	ErrNotYetValid  = errors.New("saml: assertion not yet valid")
	ErrExpired      = errors.New("saml: assertion expired")
	ErrBadSignature = errors.New("saml: signature verification failed")
	ErrUnsigned     = errors.New("saml: assertion is unsigned")
)

// Assertion is a SAML authentication assertion.
type Assertion struct {
	// ID is the unique assertion identifier.
	ID string
	// Issuer names the authority that issued the assertion (the
	// Authentication Service or the UI server's client session object).
	Issuer string
	// IssueInstant is the issuance time.
	IssueInstant time.Time
	// Subject is the authenticated principal.
	Subject string
	// Method is the authentication method URI.
	Method string
	// AuthInstant is when the subject authenticated.
	AuthInstant time.Time
	// NotBefore / NotOnOrAfter bound the validity window.
	NotBefore    time.Time
	NotOnOrAfter time.Time
	// SessionID names the Authentication Service session whose key halves
	// can verify the signature (the handle of Figure 2's session objects).
	SessionID string
	// Signature is the GSS MIC over the canonical unsigned assertion.
	Signature string
}

// newID generates a random hex assertion ID.
func newID() string {
	b := make([]byte, 12)
	if _, err := rand.Read(b); err != nil {
		panic("saml: entropy unavailable: " + err.Error())
	}
	return "_" + hex.EncodeToString(b)
}

// New constructs an unsigned assertion for a subject with the given
// validity window.
func New(issuer, subject, method, sessionID string, now time.Time, validity time.Duration) *Assertion {
	return &Assertion{
		ID:           newID(),
		Issuer:       issuer,
		IssueInstant: now,
		Subject:      subject,
		Method:       method,
		AuthInstant:  now,
		NotBefore:    now,
		NotOnOrAfter: now.Add(validity),
		SessionID:    sessionID,
	}
}

const timeLayout = "2006-01-02T15:04:05.000Z"

func formatTime(t time.Time) string { return t.UTC().Format(timeLayout) }

func parseTime(s string) (time.Time, error) { return time.Parse(timeLayout, s) }

// Element renders the assertion, including the signature when present.
func (a *Assertion) Element() *xmlutil.Element {
	el := xmlutil.NewNS(AssertionNS, "Assertion").
		SetAttr("AssertionID", a.ID).
		SetAttr("Issuer", a.Issuer).
		SetAttr("IssueInstant", formatTime(a.IssueInstant)).
		SetAttr("MajorVersion", "1").
		SetAttr("MinorVersion", "0")
	cond := xmlutil.NewNS(AssertionNS, "Conditions").
		SetAttr("NotBefore", formatTime(a.NotBefore)).
		SetAttr("NotOnOrAfter", formatTime(a.NotOnOrAfter))
	el.Add(cond)
	stmt := xmlutil.NewNS(AssertionNS, "AuthenticationStatement").
		SetAttr("AuthenticationMethod", a.Method).
		SetAttr("AuthenticationInstant", formatTime(a.AuthInstant))
	subj := xmlutil.NewNS(AssertionNS, "Subject")
	subj.AddTextNS(AssertionNS, "NameIdentifier", a.Subject)
	stmt.Add(subj)
	el.Add(stmt)
	if a.SessionID != "" {
		el.SetAttr("SessionID", a.SessionID)
	}
	if a.Signature != "" {
		sig := xmlutil.NewNS(AssertionNS, "Signature")
		sig.Text = a.Signature
		el.Add(sig)
	}
	return el
}

// FromElement parses an assertion element.
func FromElement(el *xmlutil.Element) (*Assertion, error) {
	if el.Name != "Assertion" {
		return nil, fmt.Errorf("saml: element %q is not Assertion", el.Name)
	}
	a := &Assertion{
		ID:        el.AttrDefault("AssertionID", ""),
		Issuer:    el.AttrDefault("Issuer", ""),
		SessionID: el.AttrDefault("SessionID", ""),
	}
	var err error
	if a.IssueInstant, err = parseTime(el.AttrDefault("IssueInstant", "")); err != nil {
		return nil, fmt.Errorf("saml: bad IssueInstant: %w", err)
	}
	cond := el.Child("Conditions")
	if cond == nil {
		return nil, errors.New("saml: assertion has no Conditions")
	}
	if a.NotBefore, err = parseTime(cond.AttrDefault("NotBefore", "")); err != nil {
		return nil, fmt.Errorf("saml: bad NotBefore: %w", err)
	}
	if a.NotOnOrAfter, err = parseTime(cond.AttrDefault("NotOnOrAfter", "")); err != nil {
		return nil, fmt.Errorf("saml: bad NotOnOrAfter: %w", err)
	}
	stmt := el.Child("AuthenticationStatement")
	if stmt == nil {
		return nil, errors.New("saml: assertion has no AuthenticationStatement")
	}
	a.Method = stmt.AttrDefault("AuthenticationMethod", "")
	if a.AuthInstant, err = parseTime(stmt.AttrDefault("AuthenticationInstant", "")); err != nil {
		return nil, fmt.Errorf("saml: bad AuthenticationInstant: %w", err)
	}
	if subj := stmt.Child("Subject"); subj != nil {
		a.Subject = subj.ChildText("NameIdentifier")
	}
	if a.Subject == "" {
		return nil, errors.New("saml: assertion has no Subject")
	}
	if sig := el.Child("Signature"); sig != nil {
		a.Signature = sig.Text
	}
	return a, nil
}

// signingBytes returns the canonical serialisation of the assertion with
// the signature element removed — the input to GetMIC/VerifyMIC.
func (a *Assertion) signingBytes() []byte {
	cp := *a
	cp.Signature = ""
	return []byte(cp.Element().Canonical())
}

// Sign computes the assertion signature with the given GSS context (the
// client session object's key half).
func (a *Assertion) Sign(ctx *gss.Context) {
	a.Signature = ctx.GetMIC(a.signingBytes())
}

// VerifySignature checks the signature with a GSS context holding the same
// session key (the Authentication Service's half).
func (a *Assertion) VerifySignature(ctx *gss.Context) error {
	if a.Signature == "" {
		return ErrUnsigned
	}
	if err := ctx.VerifyMIC(a.signingBytes(), a.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// CheckConditions validates the window at the given instant.
func (a *Assertion) CheckConditions(now time.Time) error {
	if now.Before(a.NotBefore) {
		return ErrNotYetValid
	}
	if !now.Before(a.NotOnOrAfter) {
		return ErrExpired
	}
	return nil
}

// Attach adds the assertion to a SOAP envelope header.
func Attach(env *soap.Envelope, a *Assertion) {
	env.AddHeader(a.Element())
}

// FromEnvelope extracts the first assertion from a SOAP envelope header,
// or nil when the envelope carries none.
func FromEnvelope(env *soap.Envelope) (*Assertion, error) {
	h := env.HeaderNamed("Assertion")
	if h == nil {
		return nil, nil
	}
	return FromElement(h)
}
