package rpc_test

// Golden wire-format conformance suite: one representative request and
// response per portal service, round-tripped over BOTH the HTTP and the
// loopback transports, with the exact wire bytes diffed against checked-in
// golden files under testdata/golden/. Together with FuzzWriterVsRender
// (which pins the streaming Writer to the tree renderer) this guarantees
// that future encoder work can never silently change what the eight
// interoperable services put on the wire — the paper's whole premise is
// that independently developed implementations agree at the byte level of
// their agreed contracts.
//
// Regenerate after an intentional format change with:
//
//	go test ./internal/rpc -run TestGoldenWireFormat -update

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/appws"
	"repro/internal/authsvc"
	"repro/internal/batchscript"
	"repro/internal/contextmgr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/gss"
	"repro/internal/jobsub"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
	"repro/internal/uddi"
	"repro/internal/wsdl"
	"repro/internal/xmlregistry"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-format files")

// goldenCase is one service's conformance probe. build must return a
// fresh, deterministic fixture: the same call against two independent
// fixtures (one per transport) must produce identical wire bytes.
type goldenCase struct {
	name  string
	build func(t *testing.T) *core.Service
	call  *soap.Call
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "batchscript",
			build: func(t *testing.T) *core.Service {
				return batchscript.NewService(batchscript.NewIUGenerator())
			},
			call: &soap.Call{ServiceNS: batchscript.ServiceNS, Method: "generateScript", Params: []soap.Value{
				soap.Str("scheduler", "PBS"), soap.Str("jobName", "golden"),
				soap.Str("executable", "/bin/date"), soap.StrArray("arguments", []string{"-u"}),
				soap.Str("stdin", ""), soap.Str("queue", "batch"),
				soap.Int("nodes", 4), soap.Int("wallTimeSeconds", 3600),
			}},
		},
		{
			name: "globusrun",
			build: func(t *testing.T) *core.Service {
				g := grid.NewTestbed()
				g.Authorize("golden@GRID")
				return jobsub.NewGlobusrunService(g, "golden@GRID")
			},
			call: &soap.Call{ServiceNS: jobsub.GlobusrunNS, Method: "run", Params: []soap.Value{
				soap.Str("host", "modi4.ncsa.uiuc.edu"),
				soap.Str("rsl", "&(executable=/bin/hostname)"),
			}},
		},
		{
			name: "srb",
			build: func(t *testing.T) *core.Service {
				broker := srb.NewBroker("sdsc")
				home := broker.CreateUser("golden")
				if err := broker.Sput("golden", home+"/greeting", "hello from the wire\n", ""); err != nil {
					t.Fatal(err)
				}
				return srbws.NewService(broker, "golden")
			},
			call: &soap.Call{ServiceNS: srbws.ServiceNS, Method: "cat", Params: []soap.Value{
				soap.Str("path", "/sdsc/home/golden/greeting"),
			}},
		},
		{
			name: "contextmanager",
			build: func(t *testing.T) *core.Service {
				return contextmgr.NewMonolithService(contextmgr.NewStore())
			},
			call: &soap.Call{ServiceNS: contextmgr.MonolithNS, Method: "createUserContext", Params: []soap.Value{
				soap.Str("user", "alice"),
			}},
		},
		{
			// A fault response golden: the portal-standard error relay is as
			// much a wire contract as the success shapes.
			name: "authsvc",
			build: func(t *testing.T) *core.Service {
				kdc := gss.NewKDC("GRID")
				kdc.AddPrincipal("authsvc/grid", "sk")
				kt, err := kdc.Keytab("authsvc/grid")
				if err != nil {
					t.Fatal(err)
				}
				return authsvc.NewSOAPService(authsvc.NewService(kt))
			},
			call: &soap.Call{ServiceNS: authsvc.ServiceNS, Method: "closeSession", Params: []soap.Value{
				soap.Str("sessionID", "no-such-session"),
			}},
		},
		{
			name: "uddi",
			build: func(t *testing.T) *core.Service {
				return uddi.NewService(uddi.NewRegistry())
			},
			call: &soap.Call{ServiceNS: uddi.ServiceNS, Method: "saveBusiness", Params: []soap.Value{
				soap.Str("name", "IU Community Grids Lab"),
				soap.Str("description", "Gateway portal group"),
			}},
		},
		{
			name: "xmlregistry",
			build: func(t *testing.T) *core.Service {
				r := xmlregistry.NewRegistry()
				if err := r.Put("services/grp0/svc0", "service", []xmlregistry.Property{
					{Name: "interface", Value: "urn:gce:batchscript"},
					{Name: "supportedScheduler", Value: "PBS"},
				}); err != nil {
					t.Fatal(err)
				}
				return xmlregistry.NewService(r)
			},
			call: &soap.Call{ServiceNS: xmlregistry.ServiceNS, Method: "get", Params: []soap.Value{
				soap.Str("path", "services/grp0/svc0"),
			}},
		},
		{
			name: "appws",
			build: func(t *testing.T) *core.Service {
				m := appws.NewManager(nil)
				if err := m.Register(&appws.Descriptor{
					Name: "Gaussian", Version: "98-A.7",
					Hosts: []appws.HostBinding{{
						DNS: "bluehorizon.sdsc.edu", IP: "198.202.96.41",
						Executable: "/usr/local/bin/gaussian",
						Queue: appws.QueueBinding{Scheduler: grid.LSF, Queue: "normal",
							MaxNodes: 64, MaxWallTime: 4 * time.Hour},
					}},
				}); err != nil {
					t.Fatal(err)
				}
				return appws.NewService(m)
			},
			call: &soap.Call{ServiceNS: appws.ServiceNS, Method: "describeApplication", Params: []soap.Value{
				soap.Str("name", "Gaussian"),
			}},
		},
		{
			// The resilience layer's degradation answers are wire contracts
			// too: a deadline-bounded service must always time out with this
			// exact Timeout fault shape.
			name: "timeoutfault",
			build: func(t *testing.T) *core.Service {
				svc := resilienceGoldenDef().MustBuild()
				svc.Use(rpc.Deadline(5 * time.Millisecond))
				return svc
			},
			call: &soap.Call{ServiceNS: "urn:gce:resilience", Method: "hang"},
		},
		{
			// The load-shedding rejection: the ServerBusy fault body (the
			// Retry-After header rides alongside on the HTTP binding only).
			name: "serverbusyfault",
			build: func(t *testing.T) *core.Service {
				return resilienceGoldenDef().MustBuild()
			},
			call: &soap.Call{ServiceNS: "urn:gce:resilience", Method: "reject"},
		},
	}
}

// resilienceGoldenDef probes the two degradation fault shapes: hang never
// answers (its Deadline middleware does), reject answers with the same
// ServerBusy fault the LoadShedder emits at capacity.
func resilienceGoldenDef() *rpc.Def {
	return &rpc.Def{
		Name: "ResilienceGolden",
		NS:   "urn:gce:resilience",
		Doc:  "resilience fault wire shapes",
		Ops: []rpc.Op{
			{Name: "hang", Out: []wsdl.Param{rpc.Str("never")},
				Handle: func(cx *core.Context, _ rpc.Args) ([]interface{}, error) {
					<-cx.Context().Done()
					return nil, cx.Context().Err()
				}},
			{Name: "reject", Out: []wsdl.Param{rpc.Str("never")},
				Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
					return nil, rpc.ServerBusyError("ResilienceGolden", 8, 16, time.Second)
				}},
		},
	}
}

// goldenProvider hosts one fresh service fixture on a provider with fixed
// identity, so faults and WSDL addresses are reproducible.
func goldenProvider(t *testing.T, tc goldenCase) *core.Provider {
	t.Helper()
	p := core.NewProvider("golden-ssp", "http://golden.example")
	p.MustRegister(tc.build(t))
	return p
}

func goldenPath(name, kind string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s.%s.xml", name, kind))
}

// checkGolden compares got against the named golden file, rewriting the
// file under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (re-run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire bytes diverge from %s\n got: %s\nwant: %s", path, got, want)
	}
}

func TestGoldenWireFormat(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			// Request: the streamed encoder and the element-tree path must
			// agree byte for byte before either is compared to the golden.
			var reqStream, reqTree bytes.Buffer
			tc.call.WireEnvelope().AppendTo(&reqStream)
			tc.call.Envelope().AppendTo(&reqTree)
			if !bytes.Equal(reqStream.Bytes(), reqTree.Bytes()) {
				t.Fatalf("request: streamed and tree encoders diverge\nstream: %s\ntree:   %s",
					reqStream.Bytes(), reqTree.Bytes())
			}
			checkGolden(t, goldenPath(tc.name, "req"), reqStream.Bytes())

			action := tc.call.ServiceNS + "#" + tc.call.Method

			// Loopback transport, fixture #1.
			lb := &soap.LoopbackTransport{Handler: goldenProvider(t, tc).Dispatch}
			var loopResp bytes.Buffer
			if err := lb.RoundTripRaw("http://golden.example/svc", action, tc.call.WireEnvelope(), &loopResp); err != nil {
				t.Fatalf("loopback round trip: %v", err)
			}

			// HTTP transport, fixture #2 (a fresh, independent instance:
			// matching bytes also prove the fixture is deterministic).
			srv := httptest.NewServer(goldenProvider(t, tc))
			defer srv.Close()
			httpReq, err := http.NewRequest(http.MethodPost, srv.URL+"/svc", bytes.NewReader(reqStream.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			httpReq.Header.Set("Content-Type", soap.ContentType)
			httpReq.Header.Set("SOAPAction", `"`+action+`"`)
			resp, err := srv.Client().Do(httpReq)
			if err != nil {
				t.Fatal(err)
			}
			httpBody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(loopResp.Bytes(), httpBody) {
				t.Fatalf("HTTP and loopback transports disagree on the wire\nloopback: %s\nhttp:     %s",
					loopResp.Bytes(), httpBody)
			}
			checkGolden(t, goldenPath(tc.name, "resp"), httpBody)

			// Every response golden must still parse as a SOAP envelope.
			if _, err := soap.ParseEnvelopeBytes(httpBody); err != nil {
				t.Fatalf("response golden does not parse: %v", err)
			}
		})
	}
}
