package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/saml"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/wsil"
	"repro/internal/xmlutil"
)

// typedDef exercises every parameter type the kernel bridges: the handler
// receives decoded values and returns raw Go values for the kernel to
// encode.
func typedDef() *Def {
	return &Def{
		Name: "TypedEcho",
		NS:   "urn:test:typedecho",
		Doc:  "kernel codec exercise",
		Ops: []Op{
			{
				Name: "describe",
				Doc:  "echoes every typed parameter back",
				In:   []wsdl.Param{Str("s"), Int("n"), Bool("b"), Strs("list"), XML("doc")},
				Out:  []wsdl.Param{Str("summary"), Int("doubled"), Bool("negated"), Strs("upper"), XML("wrapped")},
				Handle: func(_ *core.Context, in Args) ([]interface{}, error) {
					upper := make([]string, 0, len(in.Strings("list")))
					for _, s := range in.Strings("list") {
						upper = append(upper, strings.ToUpper(s))
					}
					wrapped := xmlutil.New("wrapped")
					if d := in.XML("doc"); d != nil {
						wrapped.Add(d)
					}
					summary := fmt.Sprintf("%s/%d/%v", in.Str("s"), in.Int("n"), in.Bool("b"))
					return Ret(summary, in.Int("n")*2, !in.Bool("b"), upper, wrapped), nil
				},
			},
			{
				Name: "boom",
				Out:  []wsdl.Param{Str("never")},
				Handle: func(_ *core.Context, _ Args) ([]interface{}, error) {
					panic("kaboom")
				},
			},
		},
	}
}

func typedCall(t *testing.T, cl *core.Client) {
	t.Helper()
	resp, err := cl.Call("describe",
		soap.Str("s", "hi"), soap.Int("n", 21), soap.Bool("b", false),
		soap.StrArray("list", []string{"a", "b"}),
		soap.XMLDoc("doc", xmlutil.NewText("inner", "payload")))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.ReturnText("summary"); got != "hi/21/false" {
		t.Errorf("summary = %q", got)
	}
	if got := resp.ReturnText("doubled"); got != "42" {
		t.Errorf("doubled = %q", got)
	}
	if got := resp.ReturnText("negated"); got != "true" {
		t.Errorf("negated = %q", got)
	}
	v, ok := resp.Return("upper")
	if !ok || len(v.Items) != 2 || v.Items[0].Text != "A" || v.Items[1].Text != "B" {
		t.Errorf("upper = %+v", v)
	}
	w, ok := resp.Return("wrapped")
	if !ok || w.XML == nil || w.XML.FindText("inner") != "payload" {
		t.Errorf("wrapped = %+v", w)
	}
}

// TestTypedRoundTripLoopback drives the descriptor end to end over the
// in-process transport.
func TestTypedRoundTripLoopback(t *testing.T) {
	srv := NewServer("test", "loopback://test")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://test/TypedEcho", typedDef().Interface())
	typedCall(t, cl)
}

// TestTypedRoundTripHTTP drives the same descriptor over real HTTP,
// binding dynamically from the WSDL the server publishes on GET ?wsdl.
func TestTypedRoundTripHTTP(t *testing.T) {
	srv := NewServer("test", "placeholder")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	tr := &soap.HTTPTransport{Client: hs.Client()}
	cl, err := core.BindURL(tr, hs.Client(), hs.URL+"/TypedEcho?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Endpoint != hs.URL+"/TypedEcho" {
		t.Errorf("bound endpoint = %q", cl.Endpoint)
	}
	typedCall(t, cl)
}

// TestWSDLSemanticEquivalence verifies the published WSDL round-trips to
// an interface compatible (both directions) with the descriptor-derived
// contract — the equivalence the migration must preserve.
func TestWSDLSemanticEquivalence(t *testing.T) {
	srv := NewServer("test", "http://host:1")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	resp, err := hs.Client().Get(hs.URL + "/TypedEcho?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	parsed, err := wsdl.Parse(string(body))
	if err != nil {
		t.Fatal(err)
	}
	agreed := typedDef().Interface()
	if problems := wsdl.CheckCompatible(agreed, parsed.Interface); len(problems) > 0 {
		t.Errorf("published WSDL incompatible with descriptor: %v", problems)
	}
	if problems := wsdl.CheckCompatible(parsed.Interface, agreed); len(problems) > 0 {
		t.Errorf("descriptor incompatible with published WSDL: %v", problems)
	}
	if parsed.Endpoint != hs.URL+"/TypedEcho" {
		t.Errorf("endpoint = %q", parsed.Endpoint)
	}
}

// TestMalformedParamRejected verifies the kernel's databind validation:
// a non-integer value for a declared int parameter is a BadRequest portal
// error before the handler runs.
func TestMalformedParamRejected(t *testing.T) {
	srv := NewServer("test", "loopback://test")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://test/TypedEcho", typedDef().Interface())
	cl.Strict = false // let the malformed value reach the server
	_, err := cl.Call("describe",
		soap.Str("s", "hi"), soap.Value{Name: "n", Type: "int", Text: "not-a-number"},
		soap.Bool("b", false), soap.StrArray("list", nil),
		soap.XMLDoc("doc", xmlutil.New("inner")))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeBadRequest {
		t.Errorf("err = %v, want BadRequest portal error", err)
	}
}

// TestPanicBecomesServerFault verifies the recovery middleware the server
// installs on every provider: a panicking handler surfaces as a SOAP
// Server fault, and the provider keeps serving.
func TestPanicBecomesServerFault(t *testing.T) {
	srv := NewServer("test", "loopback://test")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://test/TypedEcho", typedDef().Interface())

	_, err := cl.Call("boom")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultServer || !strings.Contains(f.String, "boom") {
		t.Fatalf("err = %v, want Server fault naming the operation", err)
	}
	// The provider survived the panic.
	typedCall(t, cl)
}

// deniedVerifier rejects every assertion.
type deniedVerifier struct{}

func (deniedVerifier) Verify(*saml.Assertion) (string, error) {
	return "", errors.New("no such session")
}

// TestAuthDeniedIsClientFault verifies fault relay through the auth
// middleware: a request without (or with a rejected) assertion yields a
// Client fault carrying the portal AuthenticationFailed detail.
func TestAuthDeniedIsClientFault(t *testing.T) {
	srv := NewServer("test", "loopback://test")
	srv.Provider("", RequireAssertion(deniedVerifier{})).MustRegister(typedDef().MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://test/TypedEcho", typedDef().Interface())

	_, err := cl.Call("boom")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code != soap.FaultClient {
		t.Errorf("fault code = %q, want Client", f.Code)
	}
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeAuthFailed {
		t.Errorf("portal error = %v, want AuthenticationFailed", pe)
	}

	// With a signed-looking assertion the verifier still rejects: same
	// Client fault, and the handler never ran (no panic surfaced).
	cl.Use(func(_ *soap.Call, env *soap.Envelope) error {
		a := saml.New("ui", "mock", saml.MethodKerberos, "sess-1", time.Now(), time.Minute)
		saml.Attach(env, a)
		return nil
	})
	_, err = cl.Call("boom")
	if !errors.As(err, &f) || f.Code != soap.FaultClient {
		t.Errorf("rejected assertion: err = %v, want Client fault", err)
	}
}

// TestStatsAndHealthz verifies request counting and the health endpoint.
func TestStatsAndHealthz(t *testing.T) {
	srv := NewServer("test", "placeholder")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	cl := core.NewClient(srv.Transport(), hs.URL+"/TypedEcho", typedDef().Interface())
	typedCall(t, cl)
	if _, err := cl.Call("boom"); err == nil {
		t.Fatal("boom should fault")
	}

	snap := srv.Stats().Snapshot()
	if op := snap["urn:test:typedecho#describe"]; op.Count != 1 || op.Errors != 0 {
		t.Errorf("describe stats = %+v", op)
	}
	if op := snap["urn:test:typedecho#boom"]; op.Count != 1 || op.Errors != 1 {
		t.Errorf("boom stats = %+v", op)
	}
	// describe carries an xml-typed parameter, so it is tree-only; boom
	// has no parameters and decodes on the streaming fast path.
	if dec := srv.Stats().DecodeSnapshot(); dec.FastPath != 1 || dec.TreePath != 1 {
		t.Errorf("decode split = %+v, want FastPath:1 TreePath:1", dec)
	}

	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
		Decode struct {
			FastPath uint64 `json:"fastPath"`
			TreePath uint64 `json:"treePath"`
		} `json:"decode"`
		Operations []struct {
			Operation string `json:"operation"`
			Count     uint64 `json:"count"`
		} `json:"operations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || len(doc.Operations) != 2 {
		t.Errorf("healthz = %+v", doc)
	}
	if doc.Decode.FastPath != 1 || doc.Decode.TreePath != 1 {
		t.Errorf("healthz decode = %+v, want fastPath:1 treePath:1", doc.Decode)
	}
}

// TestWSILPublication verifies the server publishes a live inspection
// document for every mounted provider's services.
func TestWSILPublication(t *testing.T) {
	srv := NewServer("test", "placeholder")
	srv.Provider("/a").MustRegister(typedDef().MustBuild())
	other := &Def{Name: "Other", NS: "urn:test:other", Ops: []Op{{
		Name:   "noop",
		Handle: func(*core.Context, Args) ([]interface{}, error) { return nil, nil },
	}}}
	srv.Provider("/b").MustRegister(other.MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	resp, err := hs.Client().Get(hs.URL + wsil.WellKnownPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	doc, err := wsil.Parse(string(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 2 {
		t.Fatalf("services = %+v", doc.Services)
	}
	wants := map[string]string{
		"TypedEcho": hs.URL + "/a/TypedEcho?wsdl",
		"Other":     hs.URL + "/b/Other?wsdl",
	}
	for _, s := range doc.Services {
		if wants[s.Name] != s.WSDLLocation {
			t.Errorf("service %s WSDL at %q, want %q", s.Name, s.WSDLLocation, wants[s.Name])
		}
	}
}

// TestConcurrencyLimit verifies the limiter admits callers one at a time.
func TestConcurrencyLimit(t *testing.T) {
	inFlight, peak := 0, 0
	probe := func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			vals, err := next(ctx, args)
			inFlight--
			return vals, err
		}
	}
	srv := NewServer("test", "loopback://test")
	srv.Provider("", ConcurrencyLimit(1), probe).MustRegister(typedDef().MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://test/TypedEcho", typedDef().Interface())

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := cl.Call("describe",
				soap.Str("s", "x"), soap.Int("n", 1), soap.Bool("b", true),
				soap.StrArray("list", nil), soap.XMLDoc("doc", xmlutil.New("d")))
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if peak != 1 {
		t.Errorf("peak concurrency = %d, want 1", peak)
	}
}

// TestBuildRejectsMissingHandler pins the descriptor completeness check.
func TestBuildRejectsMissingHandler(t *testing.T) {
	d := &Def{Name: "Broken", NS: "urn:test:broken", Ops: []Op{{Name: "ghost"}}}
	if _, err := d.Build(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Build err = %v", err)
	}
}

// TestWSDLCachingAndContentLength: the rendered WSDL document is cached per
// service, served with Content-Length, and invalidated when the externally
// visible base URL is rewritten.
func TestWSDLCachingAndContentLength(t *testing.T) {
	srv := NewServer("test", "placeholder")
	srv.Provider("").MustRegister(typedDef().MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	fetch := func() (string, string) {
		resp, err := hs.Client().Get(hs.URL + "/TypedEcho?wsdl")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Length")
	}
	doc1, cl1 := fetch()
	if cl1 == "" || cl1 != strconv.Itoa(len(doc1)) {
		t.Errorf("Content-Length = %q for %d body bytes", cl1, len(doc1))
	}
	doc2, _ := fetch()
	if doc1 != doc2 {
		t.Error("cached WSDL differs between fetches")
	}
	if !strings.Contains(doc1, hs.URL+"/TypedEcho") {
		t.Errorf("WSDL endpoint missing from document")
	}
	// Rewriting the base URL must invalidate the cached document.
	srv.SetBaseURL("http://relocated:9999")
	for _, p := range srv.Providers() {
		for _, svc := range p.Services() {
			if !strings.Contains(p.WSDLFor(svc), "http://relocated:9999/TypedEcho") {
				t.Error("WSDLFor did not pick up new base URL")
			}
		}
	}
	srv.SetBaseURL(hs.URL) // restore so the HTTP fetch goes through again
	doc3, _ := fetch()
	if doc3 != doc1 {
		t.Error("WSDL after base-URL rewrite cycle differs from original")
	}
}

// TestWSILCacheFreshness: the cached inspection document still reflects
// services registered after the first fetch.
func TestWSILCacheFreshness(t *testing.T) {
	srv := NewServer("test", "http://host:1")
	p := srv.Provider("")
	p.MustRegister(typedDef().MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	fetch := func() *wsil.Document {
		resp, err := hs.Client().Get(hs.URL + wsil.WellKnownPath)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
			t.Errorf("WSIL Content-Length = %q for %d bytes", cl, len(body))
		}
		doc, err := wsil.Parse(string(body))
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	if doc := fetch(); len(doc.Services) != 1 {
		t.Fatalf("services = %d, want 1", len(doc.Services))
	}
	if doc := fetch(); len(doc.Services) != 1 { // cached fetch
		t.Fatalf("cached services = %d, want 1", len(doc.Services))
	}
	late := &Def{Name: "Late", NS: "urn:test:late", Ops: []Op{{
		Name:   "noop",
		Handle: func(*core.Context, Args) ([]interface{}, error) { return nil, nil },
	}}}
	p.MustRegister(late.MustBuild())
	if doc := fetch(); len(doc.Services) != 2 {
		t.Fatalf("services after late registration = %d, want 2 (cache must refresh)", len(doc.Services))
	}
}
