package rpc

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/soap"
)

// FuzzStreamVsTreeDispatch pins the streaming fast path to the pooled
// tree path at the wire level: any POST body whatsoever must produce a
// byte-identical HTTP response from a provider running with the raw fast
// path enabled and one running tree-only. This is the safety net for the
// treeless decoder — whenever the streaming reader accepts an envelope,
// its decode must match what the tree codecs would have produced, and
// whenever it bails out the fallback must be transparent. Seeds cover the
// golden request corpus of every service plus the tricky shapes the
// reader is supposed to reject (headers, faults, literal XML, entities,
// nested arrays, junk).
func FuzzStreamVsTreeDispatch(f *testing.F) {
	build := func() *core.Provider {
		p := core.NewProvider("fuzz-ssp", "http://fuzz.example")
		p.MustRegister(typedDef().MustBuild())
		return p
	}
	// Two independent providers so per-request state (stats, caches) on
	// one path can never leak into the other's responses.
	tree := build()
	fast := build()
	treeSrv := httptest.NewServer(soap.Handler(tree.Dispatch))
	fastSrv := httptest.NewServer(soap.HandlerWithRaw(fast.Dispatch, fast.DispatchRaw))
	f.Cleanup(treeSrv.Close)
	f.Cleanup(fastSrv.Close)

	// The golden request corpus: real envelopes for every portal service.
	// Against this provider they exercise the unknown-service fallback;
	// mutations of them explore the full envelope grammar.
	if paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.xml")); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(data)
			}
		}
	}
	// An in-grammar request for the registered service, built by the same
	// encoder the clients use.
	call := &soap.Call{
		ServiceNS: "urn:test:typedecho",
		Method:    "describe",
		Params: []soap.Value{
			soap.Str("s", "hi"), soap.Int("n", 21), soap.Bool("b", false),
			soap.StrArray("list", []string{"a", "b"}),
		},
	}
	f.Add([]byte(call.WireEnvelope().Render()))
	// Shapes the streaming reader must reject and route to the tree path.
	f.Add([]byte(`<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Header><tok>x</tok></e:Header><e:Body>` +
		`<m:describe xmlns:m="urn:test:typedecho"><s>hdr</s></m:describe></e:Body></e:Envelope>`))
	f.Add([]byte(`<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
		`<m:describe xmlns:m="urn:test:typedecho"><doc><inner a="b">payload</inner></doc></m:describe></e:Body></e:Envelope>`))
	f.Add([]byte(`<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
		`<m:describe xmlns:m="urn:test:typedecho"><s>a &amp; b &#60;</s><n>7</n></m:describe></e:Body></e:Envelope>`))
	f.Add([]byte(`<?xml version="1.0"?><e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/></e:Envelope>`))
	f.Add([]byte(`not xml at all`))
	f.Add([]byte(`<a><b></a></b>`))

	post := func(url string, body []byte) (int, string, []byte, error) {
		resp, err := http.Post(url, "text/xml; charset=utf-8", bytes.NewReader(body))
		if err != nil {
			return 0, "", nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), b, err
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		tc, tct, tb, terr := post(treeSrv.URL, body)
		fc, fct, fb, ferr := post(fastSrv.URL, body)
		if (terr != nil) != (ferr != nil) {
			t.Fatalf("transport error divergence: tree=%v fast=%v", terr, ferr)
		}
		if terr != nil {
			return
		}
		if tc != fc {
			t.Fatalf("status divergence: tree=%d fast=%d\nbody: %q\ntree resp: %s\nfast resp: %s", tc, fc, body, tb, fb)
		}
		if tct != fct {
			t.Fatalf("content-type divergence: tree=%q fast=%q", tct, fct)
		}
		if !bytes.Equal(tb, fb) {
			t.Fatalf("response divergence for %q\ntree: %s\nfast: %s", body, tb, fb)
		}
	})
}
