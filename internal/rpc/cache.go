package rpc

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
)

// ResponseCache memoises the out parameters of idempotent operations, keyed
// by service namespace, operation, and the canonicalised call parameters.
// Repeated discovery traffic — UDDI find*/get* inquiries, xmlregistry
// queries — short-circuits before the handler (and before any decode work
// below the middleware) runs.
//
// Entries expire after TTL and the cache holds at most MaxEntries values,
// evicting least-recently-used first. A successful pass through a
// non-cacheable operation flushes the cache, so writes (save*, delete, put)
// invalidate the inquiry results derived from them; staleness is therefore
// bounded by TTL only for out-of-band mutations.
//
// Only cache operations whose result depends solely on the operation name
// and parameters: principal- or time-dependent responses would leak between
// callers. XML-valued returns are deep-copied at store time so cached trees
// can never alias a pooled request arena.
type ResponseCache struct {
	ttl time.Duration
	max int

	// now is the clock, injectable for TTL tests.
	now func() time.Time

	mu      sync.Mutex
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key     string
	vals    []soap.Value
	expires time.Time
}

// NewResponseCache creates a cache with the given entry TTL and maximum
// entry count. Non-positive values fall back to 30s and 1024 entries.
func NewResponseCache(ttl time.Duration, maxEntries int) *ResponseCache {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &ResponseCache{
		ttl:     ttl,
		max:     maxEntries,
		now:     time.Now,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// OpPrefixes returns a predicate matching operations whose name starts with
// any of the given prefixes — the usual way to select the find*/get*/list*
// inquiry surface of a service.
func OpPrefixes(prefixes ...string) func(string) bool {
	return func(op string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(op, p) {
				return true
			}
		}
		return false
	}
}

// Middleware returns the caching middleware. cacheable selects the
// idempotent operations; every other operation passes through and, when it
// succeeds, flushes the cache (it presumably mutated the state the cached
// answers were derived from). Attach it per service (Service.Use) so one
// service's writes do not flush another's cache.
func (c *ResponseCache) Middleware(cacheable func(op string) bool) core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			if cacheable == nil || !cacheable(ctx.Operation) {
				vals, err := next(ctx, args)
				if err == nil {
					c.Flush()
				}
				return vals, err
			}
			key := cacheKey(ctx.ServiceNS, ctx.Operation, args)
			if vals, ok := c.get(key); ok {
				return vals, nil
			}
			vals, err := next(ctx, args)
			if err != nil {
				return vals, err
			}
			c.put(key, vals)
			return vals, nil
		}
	}
}

// Flush drops every cached entry.
func (c *ResponseCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	for k := range c.entries {
		delete(c.entries, k)
	}
}

// Stats reports hit/miss counters and the current entry count.
func (c *ResponseCache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

func (c *ResponseCache) get(key string) ([]soap.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	le, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := le.Value.(*cacheEntry)
	if c.now().After(e.expires) {
		c.order.Remove(le)
		delete(c.entries, key)
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(le)
	c.hits++
	return e.vals, true
}

func (c *ResponseCache) put(key string, vals []soap.Value) {
	stored := make([]soap.Value, len(vals))
	for i, v := range vals {
		stored[i] = detachValue(v)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if le, ok := c.entries[key]; ok {
		e := le.Value.(*cacheEntry)
		e.vals = stored
		e.expires = c.now().Add(c.ttl)
		c.order.MoveToFront(le)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	e := &cacheEntry{key: key, vals: stored, expires: c.now().Add(c.ttl)}
	c.entries[key] = c.order.PushFront(e)
}

// detachValue deep-copies any XML payloads so a cached value never aliases
// an element tree owned by someone else (in particular a pooled request
// arena, should a handler ever echo request XML into its returns).
func detachValue(v soap.Value) soap.Value {
	if v.XML != nil {
		v.XML = v.XML.Clone()
	}
	if len(v.Items) > 0 {
		items := make([]soap.Value, len(v.Items))
		for i, it := range v.Items {
			items[i] = detachValue(it)
		}
		v.Items = items
	}
	return v
}

// cacheKey canonicalises a call into a collision-free string: parameters are
// sorted by name (so semantically identical calls share an entry regardless
// of wire order) and every field is length-prefixed.
func cacheKey(ns, op string, args soap.Args) string {
	var b strings.Builder
	b.Grow(len(ns) + len(op) + 32*len(args))
	writeField(&b, ns)
	writeField(&b, op)
	if len(args) <= 1 {
		for _, v := range args {
			writeValueKey(&b, v)
		}
		return b.String()
	}
	idx := make([]int, len(args))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by name: parameter lists are tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && args[idx[j]].Name < args[idx[j-1]].Name; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		writeValueKey(&b, args[i])
	}
	return b.String()
}

func writeField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func writeValueKey(b *strings.Builder, v soap.Value) {
	writeField(b, v.Name)
	writeField(b, v.Type)
	switch {
	case v.XML != nil:
		writeField(b, v.XML.Canonical())
	case len(v.Items) > 0:
		b.WriteString(strconv.Itoa(len(v.Items)))
		b.WriteByte('[')
		for _, it := range v.Items {
			writeValueKey(b, it)
		}
		b.WriteByte(']')
	default:
		writeField(b, v.Text)
	}
}
