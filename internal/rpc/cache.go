package rpc

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/shardmap"
	"repro/internal/soap"
)

// ResponseCache memoises the out parameters of idempotent operations, keyed
// by service namespace, operation, and the canonicalised call parameters.
// Repeated discovery traffic — UDDI find*/get* inquiries, xmlregistry
// queries — short-circuits before the handler (and before any decode work
// below the middleware) runs.
//
// Entries expire after TTL and the cache holds at most MaxEntries values,
// evicting least-recently-used first. A successful pass through a
// non-cacheable operation flushes the cache, so writes (save*, delete, put)
// invalidate the inquiry results derived from them; staleness is therefore
// bounded by TTL only for out-of-band mutations.
//
// Only cache operations whose result depends solely on the operation name
// and parameters: principal- or time-dependent responses would leak between
// callers. XML-valued returns are deep-copied at store time so cached trees
// can never alias a pooled request arena.
//
// Internally the cache is split into hash-partitioned segments, each with
// its own mutex, LRU list, and share of the capacity, so concurrent hits on
// different keys never serialise behind one lock. Eviction is per-segment
// (segment-local LRU); hit/miss counters are atomics shared across
// segments. The segment count scales with capacity — small caches get one
// segment and therefore exact global LRU order, large caches trade exact
// global recency for parallelism.
type ResponseCache struct {
	ttl time.Duration

	// now is the clock, injectable for TTL tests. Set it before the cache
	// sees traffic.
	now func() time.Time

	shards []cacheShard
	mask   uint64

	hits, misses atomic.Uint64
}

// cacheShard is one capacity segment: a mutex, an LRU list, and the keys
// that hash to it.
type cacheShard struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key     string
	vals    []soap.Value
	expires time.Time
}

// cacheShardCount picks the number of segments for a given capacity: one
// per 8 entries, capped at 16, so tiny caches keep exact LRU semantics and
// big ones spread across enough locks to feed every core.
func cacheShardCount(maxEntries int) int {
	n := 1
	for n*2 <= maxEntries/8 && n < 16 {
		n *= 2
	}
	return n
}

// NewResponseCache creates a cache with the given entry TTL and maximum
// entry count. Non-positive values fall back to 30s and 1024 entries.
func NewResponseCache(ttl time.Duration, maxEntries int) *ResponseCache {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	n := cacheShardCount(maxEntries)
	c := &ResponseCache{
		ttl:    ttl,
		now:    time.Now,
		shards: make([]cacheShard, n),
		mask:   uint64(n - 1),
	}
	for i := range c.shards {
		c.shards[i].max = maxEntries / n
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

func (c *ResponseCache) shardFor(key string) *cacheShard {
	return &c.shards[shardmap.Hash(key)&c.mask]
}

// OpPrefixes returns a predicate matching operations whose name starts with
// any of the given prefixes — the usual way to select the find*/get*/list*
// inquiry surface of a service.
func OpPrefixes(prefixes ...string) func(string) bool {
	return func(op string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(op, p) {
				return true
			}
		}
		return false
	}
}

// Middleware returns the caching middleware. cacheable selects the
// idempotent operations; every other operation passes through and, when it
// succeeds, flushes the cache (it presumably mutated the state the cached
// answers were derived from). Attach it per service (Service.Use) so one
// service's writes do not flush another's cache.
func (c *ResponseCache) Middleware(cacheable func(op string) bool) core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			if cacheable == nil || !cacheable(ctx.Operation) {
				vals, err := next(ctx, args)
				if err == nil {
					c.Flush()
				}
				return vals, err
			}
			key := cacheKey(ctx.ServiceNS, ctx.Operation, args)
			if vals, ok := c.get(key); ok {
				return vals, nil
			}
			vals, err := next(ctx, args)
			if err != nil {
				return vals, err
			}
			c.put(key, vals)
			return vals, nil
		}
	}
}

// Flush drops every cached entry, one segment at a time. A concurrent
// inquiry may land its entry in an already-flushed segment; staleness of
// such an entry stays bounded by TTL.
func (c *ResponseCache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.order.Init()
		for k := range s.entries {
			delete(s.entries, k)
		}
		s.mu.Unlock()
	}
}

// Stats reports hit/miss counters and the current entry count. The entry
// count sums segments one lock at a time (weakly consistent).
func (c *ResponseCache) Stats() (hits, misses uint64, entries int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += len(s.entries)
		s.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries
}

func (c *ResponseCache) get(key string) ([]soap.Value, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	le, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := le.Value.(*cacheEntry)
	if c.now().After(e.expires) {
		s.order.Remove(le)
		delete(s.entries, key)
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(le)
	vals := e.vals
	s.mu.Unlock()
	c.hits.Add(1)
	return vals, true
}

func (c *ResponseCache) put(key string, vals []soap.Value) {
	stored := make([]soap.Value, len(vals))
	for i, v := range vals {
		stored[i] = detachValue(v)
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if le, ok := s.entries[key]; ok {
		e := le.Value.(*cacheEntry)
		e.vals = stored
		e.expires = c.now().Add(c.ttl)
		s.order.MoveToFront(le)
		return
	}
	for s.order.Len() >= s.max {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
	e := &cacheEntry{key: key, vals: stored, expires: c.now().Add(c.ttl)}
	s.entries[key] = s.order.PushFront(e)
}

// detachValue deep-copies any XML payloads so a cached value never aliases
// an element tree owned by someone else (in particular a pooled request
// arena, should a handler ever echo request XML into its returns).
func detachValue(v soap.Value) soap.Value {
	if v.XML != nil {
		v.XML = v.XML.Clone()
	}
	if len(v.Items) > 0 {
		items := make([]soap.Value, len(v.Items))
		for i, it := range v.Items {
			items[i] = detachValue(it)
		}
		v.Items = items
	}
	return v
}

// cacheKey canonicalises a call into a collision-free string: parameters are
// sorted by name (so semantically identical calls share an entry regardless
// of wire order) and every field is length-prefixed.
func cacheKey(ns, op string, args soap.Args) string {
	var b strings.Builder
	b.Grow(len(ns) + len(op) + 32*len(args))
	writeField(&b, ns)
	writeField(&b, op)
	if len(args) <= 1 {
		for _, v := range args {
			writeValueKey(&b, v)
		}
		return b.String()
	}
	idx := make([]int, len(args))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by name: parameter lists are tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && args[idx[j]].Name < args[idx[j-1]].Name; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		writeValueKey(&b, args[i])
	}
	return b.String()
}

func writeField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

func writeValueKey(b *strings.Builder, v soap.Value) {
	writeField(b, v.Name)
	writeField(b, v.Type)
	switch {
	case v.XML != nil:
		writeField(b, v.XML.Canonical())
	case len(v.Items) > 0:
		b.WriteString(strconv.Itoa(len(v.Items)))
		b.WriteByte('[')
		for _, it := range v.Items {
			writeValueKey(b, it)
		}
		b.WriteByte(']')
	default:
		writeField(b, v.Text)
	}
}
