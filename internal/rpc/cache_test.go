package rpc

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// cacheFixture wires the middleware around a counting handler.
func cacheFixture(c *ResponseCache, cacheable func(string) bool) (core.HandlerFunc, *int) {
	calls := 0
	handler := func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		calls++
		return []soap.Value{soap.Str("out", "result-"+args.String("q"))}, nil
	}
	return c.Middleware(cacheable)(handler), &calls
}

func inquiryCtx(op string) *core.Context {
	return &core.Context{Operation: op, ServiceNS: "urn:test"}
}

func TestResponseCacheHitSkipsHandler(t *testing.T) {
	c := NewResponseCache(time.Minute, 16)
	h, calls := cacheFixture(c, OpPrefixes("find", "get"))
	args := soap.Args{soap.Str("q", "a")}

	for i := 0; i < 3; i++ {
		vals, err := h(inquiryCtx("findService"), args)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].Text != "result-a" {
			t.Fatalf("vals = %+v", vals)
		}
	}
	if *calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (cache must short-circuit)", *calls)
	}
	// Different parameters are a different entry.
	if _, err := h(inquiryCtx("findService"), soap.Args{soap.Str("q", "b")}); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Fatalf("handler ran %d times, want 2", *calls)
	}
	// Different operation, same params: also a different entry.
	if _, err := h(inquiryCtx("getService"), args); err != nil {
		t.Fatal(err)
	}
	if *calls != 3 {
		t.Fatalf("handler ran %d times, want 3", *calls)
	}
	hits, misses, entries := c.Stats()
	if hits != 2 || misses != 3 || entries != 3 {
		t.Fatalf("stats = %d hits, %d misses, %d entries", hits, misses, entries)
	}
}

func TestResponseCacheParamOrderCanonicalised(t *testing.T) {
	c := NewResponseCache(time.Minute, 16)
	h, calls := cacheFixture(c, OpPrefixes("find"))
	ab := soap.Args{soap.Str("a", "1"), soap.Str("b", "2")}
	ba := soap.Args{soap.Str("b", "2"), soap.Str("a", "1")}
	if _, err := h(inquiryCtx("find"), ab); err != nil {
		t.Fatal(err)
	}
	if _, err := h(inquiryCtx("find"), ba); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatalf("handler ran %d times: parameter order must not defeat the cache", *calls)
	}
}

func TestResponseCacheTTLExpiry(t *testing.T) {
	c := NewResponseCache(10*time.Second, 16)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	h, calls := cacheFixture(c, OpPrefixes("find"))
	args := soap.Args{soap.Str("q", "x")}

	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	now = now.Add(9 * time.Second)
	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatalf("handler ran %d times before TTL, want 1", *calls)
	}
	now = now.Add(2 * time.Second) // past the 10s TTL
	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Fatalf("handler ran %d times after TTL, want 2 (entry must expire)", *calls)
	}
}

func TestResponseCacheSizeEviction(t *testing.T) {
	c := NewResponseCache(time.Minute, 2)
	h, calls := cacheFixture(c, OpPrefixes("find"))
	q := func(s string) soap.Args { return soap.Args{soap.Str("q", s)} }

	// Fill: a, b. Touch a so b is the LRU. Insert c: b must be evicted.
	for _, s := range []string{"a", "b", "a", "c"} {
		if _, err := h(inquiryCtx("find"), q(s)); err != nil {
			t.Fatal(err)
		}
	}
	if *calls != 3 {
		t.Fatalf("handler ran %d times, want 3", *calls)
	}
	if _, err := h(inquiryCtx("find"), q("a")); err != nil { // still cached
		t.Fatal(err)
	}
	if *calls != 3 {
		t.Fatal("most-recently-used entry was evicted")
	}
	if _, err := h(inquiryCtx("find"), q("b")); err != nil { // evicted
		t.Fatal(err)
	}
	if *calls != 4 {
		t.Fatalf("handler ran %d times, want 4 (LRU entry must have been evicted)", *calls)
	}
	if _, _, entries := c.Stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
}

func TestResponseCacheWriteFlushes(t *testing.T) {
	c := NewResponseCache(time.Minute, 16)
	h, calls := cacheFixture(c, OpPrefixes("find"))
	args := soap.Args{soap.Str("q", "x")}
	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatal("warm-up failed")
	}
	// A successful write op flushes the derived inquiry results.
	if _, err := h(inquiryCtx("saveService"), soap.Args{soap.Str("name", "n")}); err != nil {
		t.Fatal(err)
	}
	if _, err := h(inquiryCtx("find"), args); err != nil {
		t.Fatal(err)
	}
	if *calls != 3 {
		t.Fatalf("handler ran %d times, want 3 (write must flush cached inquiries)", *calls)
	}
}

func TestResponseCacheDetachesXML(t *testing.T) {
	c := NewResponseCache(time.Minute, 16)
	shared := xmlutil.New("list").AddText("item", "one")
	handler := func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		return []soap.Value{soap.XMLDoc("doc", shared)}, nil
	}
	h := c.Middleware(OpPrefixes("find"))(handler)
	if _, err := h(inquiryCtx("find"), nil); err != nil {
		t.Fatal(err)
	}
	// Mutate the handler's tree after it was cached: the cached copy must be
	// unaffected (it would otherwise alias pooled request arenas too).
	shared.Children[0].Text = "corrupted"
	vals, err := h(inquiryCtx("find"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[0].XML.ChildText("item"); got != "one" {
		t.Fatalf("cached XML = %q, want detached copy %q", got, "one")
	}
}

// TestResponseCacheEndToEnd drives the middleware through a real provider
// dispatch to prove a cache hit skips the full handler path.
func TestResponseCacheEndToEnd(t *testing.T) {
	calls := 0
	def := &Def{
		Name: "Echo", NS: "urn:test:cache",
		Ops: []Op{{
			Name: "getAnswer",
			In:   StrParams("q"),
			Out:  []wsdl.Param{Str("answer")},
			Handle: func(ctx *core.Context, in Args) ([]interface{}, error) {
				calls++
				return Ret("answer-" + in.Str("q")), nil
			},
		}},
	}
	svc := def.MustBuild()
	cache := NewResponseCache(time.Minute, 8)
	svc.Use(cache.Middleware(OpPrefixes("get")))
	p := core.NewProvider("ssp", "loopback://x")
	p.MustRegister(svc)
	cl := core.NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "x", def.Interface())
	for i := 0; i < 3; i++ {
		got, err := cl.CallText("getAnswer", soap.Str("q", "42"))
		if err != nil {
			t.Fatal(err)
		}
		if got != "answer-42" {
			t.Fatalf("answer = %q", got)
		}
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times over 3 calls, want 1", calls)
	}
	hits, _, _ := cache.Stats()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

// TestHealthzReportsCacheStats pins the /healthz wire format for
// registered response caches: hit/miss/entry counters must be reachable
// over HTTP next to the decode counters.
func TestHealthzReportsCacheStats(t *testing.T) {
	calls := 0
	def := &Def{
		Name: "Echo", NS: "urn:test:cache:healthz",
		Ops: []Op{{
			Name: "getAnswer",
			In:   StrParams("q"),
			Out:  []wsdl.Param{Str("answer")},
			Handle: func(_ *core.Context, in Args) ([]interface{}, error) {
				calls++
				return Ret("answer-" + in.Str("q")), nil
			},
		}},
	}
	svc := def.MustBuild()
	cache := NewResponseCache(time.Minute, 8)
	svc.Use(cache.Middleware(OpPrefixes("get")))

	srv := NewServer("test", "placeholder")
	srv.Stats().RegisterCache("echo", cache)
	srv.Provider("").MustRegister(svc)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	cl := core.NewClient(srv.Transport(), hs.URL+"/Echo", def.Interface())
	for i := 0; i < 3; i++ {
		if _, err := cl.CallText("getAnswer", soap.Str("q", "42")); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}

	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
		Caches []struct {
			Name    string `json:"name"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"caches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || len(doc.Caches) != 1 {
		t.Fatalf("healthz = %+v", doc)
	}
	c := doc.Caches[0]
	if c.Name != "echo" || c.Hits != 2 || c.Misses != 1 || c.Entries != 1 {
		t.Fatalf("healthz cache line = %+v, want echo 2/1/1", c)
	}
}

// TestResponseCacheConcurrency hammers one cache from many goroutines
// mixing cacheable reads (hits, misses, TTL refreshes), writes (which
// flush), explicit Flushes, and Stats polling. Run under -race (the CI
// race job does) this pins the cache's internal locking; the functional
// assertion is that every call still returns the right value and the
// counters stay coherent.
func TestResponseCacheConcurrency(t *testing.T) {
	handled := make(chan struct{}, 1<<16)
	def := &Def{
		Name: "Echo", NS: "urn:test:cache:conc",
		Ops: []Op{
			{
				Name: "getValue",
				In:   StrParams("k"),
				Out:  []wsdl.Param{Str("v")},
				Handle: func(_ *core.Context, in Args) ([]interface{}, error) {
					handled <- struct{}{}
					return Ret("v-" + in.Str("k")), nil
				},
			},
			{
				Name: "putValue",
				In:   StrParams("k"),
				Out:  []wsdl.Param{Bool("ok")},
				Handle: func(_ *core.Context, _ Args) ([]interface{}, error) {
					return Ret(true), nil
				},
			},
		},
	}
	svc := def.MustBuild()
	cache := NewResponseCache(50*time.Millisecond, 16) // small: forces eviction under load
	svc.Use(cache.Middleware(OpPrefixes("get")))
	p := core.NewProvider("ssp", "loopback://conc")
	p.MustRegister(svc)
	tr := &soap.LoopbackTransport{Handler: p.Dispatch}

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := core.NewClient(tr, "x", def.Interface())
			for i := 0; i < iters; i++ {
				k := strconv.Itoa((g + i) % 24) // overlap keys across goroutines
				switch i % 5 {
				case 4: // a write: passes through and flushes
					if _, err := cl.Call("putValue", soap.Str("k", k)); err != nil {
						errs <- err
						return
					}
				case 3:
					if g == 0 {
						cache.Flush()
					}
					cache.Stats()
				default:
					got, err := cl.CallText("getValue", soap.Str("k", k))
					if err != nil {
						errs <- err
						return
					}
					if got != "v-"+k {
						errs <- fmt.Errorf("getValue(%s) = %q", k, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, entries := cache.Stats()
	if entries > 16 {
		t.Fatalf("cache grew past its bound: %d entries", entries)
	}
	if int(hits)+int(misses) == 0 {
		t.Fatal("no cacheable traffic observed")
	}
	if len(handled) == 0 {
		t.Fatal("handler never ran")
	}
}
