package rpc

import (
	"bytes"
	"context"
	"crypto/subtle"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsil"
)

// Server is the hosting layer: it owns one or more SOAP service providers
// mounted under path prefixes, serves each service's WSDL (through the
// provider's GET ?wsdl handling), publishes the WS-Inspection document at
// the well-known path, exposes request stats at /healthz, and wraps every
// provider in the kernel's recovery and stats middleware. Binaries build
// their whole HTTP surface from one Server instead of hand-assembling a
// mux, provider set, and inspection publisher.
type Server struct {
	// Name identifies the deployment in faults and logs.
	Name string

	mux   *http.ServeMux
	stats *Stats

	// draining gates new requests once Shutdown begins: the HTTP listener
	// stops on its own, but in-process (loopback) dispatch keeps flowing
	// and must be refused here.
	draining atomic.Bool
	// httpMu guards the live http.Server handle Shutdown needs.
	httpMu  sync.Mutex
	httpSrv *http.Server

	// flushMu guards the cache-flush registry and token (wiring-time
	// writes, per-flush reads).
	flushMu    sync.Mutex
	flushToken string
	flushable  map[string][]*ResponseCache
	flushes    atomic.Uint64

	mu      sync.Mutex
	baseURL string
	mounts  []*mount
	// wsil caches the rendered WS-Inspection document. Services are only
	// ever added (never removed), so the (service count, base URL) pair is
	// a complete freshness key: late registrations and base-URL rewrites
	// regenerate it, everything else is served from the cache.
	wsil struct {
		services int
		baseURL  string
		doc      []byte
	}
}

type mount struct {
	prefix   string
	provider *core.Provider
}

// NewServer creates a hosting server. baseURL is the externally visible
// URL prefix used in published WSDL endpoint addresses (it may be
// corrected later with SetBaseURL once a listener address is known).
func NewServer(name, baseURL string) *Server {
	s := &Server{
		Name:    name,
		baseURL: strings.TrimSuffix(baseURL, "/"),
		mux:     http.NewServeMux(),
		stats:   NewStats(),
	}
	s.mux.Handle("/healthz", s.stats)
	s.mux.HandleFunc(wsil.WellKnownPath, s.serveWSIL)
	return s
}

// Stats returns the server-wide request stats collector.
func (s *Server) Stats() *Stats { return s.stats }

// Provider creates and mounts a SOAP service provider under prefix (""
// mounts at the root). Every provider gets the kernel's recovery and
// stats middleware, then the given middlewares, in order. Services are
// then deployed with the returned provider's Register/MustRegister.
func (s *Server) Provider(prefix string, mw ...core.Middleware) *core.Provider {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefix = strings.TrimSuffix(prefix, "/")
	for _, m := range s.mounts {
		if m.prefix == prefix {
			panic(fmt.Sprintf("rpc: server %s already has a provider at prefix %q", s.Name, prefix))
		}
	}
	name := s.Name
	if prefix != "" {
		name += strings.ReplaceAll(prefix, "/", "-")
	}
	p := core.NewProvider(name, s.baseURL+prefix)
	// Stats outermost so it also observes panics after Recover turns them
	// into faults, and drain rejections before Recover.
	p.Use(s.stats.Middleware())
	p.Use(s.drainGate)
	p.Use(Recover())
	for _, m := range mw {
		p.Use(m)
	}
	if prefix == "" {
		s.mux.Handle("/", p)
	} else {
		s.mux.Handle(prefix+"/", http.StripPrefix(prefix, p))
	}
	s.mounts = append(s.mounts, &mount{prefix: prefix, provider: p})
	return p
}

// Handle mounts an arbitrary HTTP handler (UI pages, wizard forms) on the
// server's mux alongside the SOAP endpoints.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// HandleFunc mounts an HTTP handler function on the server's mux.
func (s *Server) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(pattern, h)
}

// SetBaseURL rewrites the externally visible base URL on the server and
// every mounted provider — used when the listener address is only known
// after the server is assembled (httptest, port 0).
func (s *Server) SetBaseURL(baseURL string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.baseURL = strings.TrimSuffix(baseURL, "/")
	for _, m := range s.mounts {
		m.provider.SetBaseURL(s.baseURL + m.prefix)
	}
}

// Providers returns the mounted providers in mount order.
func (s *Server) Providers() []*core.Provider {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Provider, len(s.mounts))
	for i, m := range s.mounts {
		out[i] = m.provider
	}
	return out
}

// Handler returns the complete HTTP surface: SOAP endpoints with WSDL
// publication, the WS-Inspection document, /healthz, and any extra
// mounted handlers.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes the server itself mountable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// FlushPath is the kernel's cache-invalidation control endpoint: an
// authenticated POST here drops the response caches registered for a
// service namespace. A federating gateway uses it to invalidate every
// replica's cache after forwarding a write to one of them, so stale
// inquiry answers disappear fleet-wide, not just on the node that took
// the write.
const FlushPath = "/__flush"

// FlushTokenHeader carries the shared-secret token authenticating flush
// control ops.
const FlushTokenHeader = "X-Portal-Flush-Token"

// RegisterFlushCache associates a response cache with the service
// namespace whose write operations invalidate it, making the cache
// reachable through the __flush control op. Callers normally also
// Stats().RegisterCache the same cache for /healthz visibility.
func (s *Server) RegisterFlushCache(serviceNS string, c *ResponseCache) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if s.flushable == nil {
		s.flushable = make(map[string][]*ResponseCache)
	}
	s.flushable[serviceNS] = append(s.flushable[serviceNS], c)
}

// EnableCacheFlush mounts the __flush control op, authenticated by the
// shared token: POST /__flush?ns=<serviceNS> drops every cache registered
// for that namespace (every registered cache when ns is empty).
// Cross-node invalidation stays off unless a deployment opts in with a
// non-empty token.
func (s *Server) EnableCacheFlush(token string) {
	if token == "" {
		panic("rpc: EnableCacheFlush requires a non-empty token")
	}
	s.flushMu.Lock()
	already := s.flushToken != ""
	s.flushToken = token
	s.flushMu.Unlock()
	if !already {
		s.mux.HandleFunc(FlushPath, s.serveFlush)
	}
}

// Flushes reports how many __flush control ops the server has honoured.
func (s *Server) Flushes() uint64 { return s.flushes.Load() }

func (s *Server) serveFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "flush: POST required", http.StatusMethodNotAllowed)
		return
	}
	s.flushMu.Lock()
	token := s.flushToken
	s.flushMu.Unlock()
	got := r.Header.Get(FlushTokenHeader)
	if token == "" || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
		http.Error(w, "flush: invalid token", http.StatusForbidden)
		return
	}
	ns := r.URL.Query().Get("ns")
	s.flushMu.Lock()
	var caches []*ResponseCache
	if ns == "" {
		for _, cs := range s.flushable {
			caches = append(caches, cs...)
		}
	} else {
		caches = append(caches, s.flushable[ns]...)
	}
	s.flushMu.Unlock()
	for _, c := range caches {
		c.Flush()
	}
	s.flushes.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flushed %d\n", len(caches))
}

// DrainingError is the fault new requests are refused with while the
// server drains: ServiceUnavailable with retry advice, so well-behaved
// clients fail over or come back after the restart.
func DrainingError(server string) error {
	pe := soap.NewPortalError(server, soap.ErrCodeUnavailable, "server %s is draining", server)
	f := pe.Fault()
	f.RetryAfter = time.Second
	return f
}

// drainGate refuses new requests once Shutdown has begun. It sits between
// stats (which counts the rejections) and the rest of the chain, so
// in-flight requests below it finish undisturbed.
func (s *Server) drainGate(next core.HandlerFunc) core.HandlerFunc {
	return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		if s.draining.Load() {
			return nil, DrainingError(s.Name)
		}
		return next(ctx, args)
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ListenAndServe serves the handler on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Shutdown drains the server gracefully: it stops accepting new requests
// (both at the HTTP listener and, for in-process transports, at the drain
// gate), waits for in-flight requests to finish, and flushes the stats
// collector to the log. ctx bounds the wait; its expiry abandons the
// drain and returns the context error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	// srv.Shutdown only waits for HTTP connections; in-process dispatches
	// (loopback transports, server transports) are tracked by the stats
	// in-flight gauge, whose drain signal the wait parks on — no polling.
	if werr := s.stats.WaitIdle(ctx); werr != nil {
		return werr
	}
	s.stats.Flush(nil)
	return err
}

// ListenAndServeGraceful serves on addr until SIGTERM or SIGINT, then
// drains within drainTimeout. It returns nil after a clean drain, making
// it the one-line main-loop for portal binaries.
func (s *Server) ListenAndServeGraceful(addr string, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(addr) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("rpc: server %s draining (signal)", s.Name)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := s.Shutdown(sctx); err != nil {
			return fmt.Errorf("rpc: drain %s: %w", s.Name, err)
		}
		if err := <-errCh; err != nil && err != http.ErrServerClosed {
			return err
		}
		log.Printf("rpc: server %s drained cleanly", s.Name)
		return nil
	}
}

// serveWSIL publishes the live WS-Inspection document enumerating every
// deployed service with a link to its WSDL. The rendered document is cached
// until a service is registered or the base URL changes, so late
// registrations still appear without re-publication.
func (s *Server) serveWSIL(w http.ResponseWriter, r *http.Request) {
	// Snapshot the base URL and mount list together, then derive every
	// WSDL link from that snapshot: the cached document is keyed to the
	// exact base it was rendered for, so a concurrent SetBaseURL cannot
	// poison the cache with mismatched links.
	s.mu.Lock()
	base := s.baseURL
	mounts := append([]*mount(nil), s.mounts...)
	s.mu.Unlock()
	doc := &wsil.Document{}
	for _, m := range mounts {
		for _, svc := range m.provider.Services() {
			doc.Services = append(doc.Services, wsil.ServiceEntry{
				Name:         svc.Contract.Name,
				Abstract:     svc.Contract.Doc,
				WSDLLocation: base + m.prefix + svc.Path + "?wsdl",
			})
		}
	}
	count := len(doc.Services)
	s.mu.Lock()
	if s.wsil.doc != nil && s.wsil.services == count && s.wsil.baseURL == base {
		cached := s.wsil.doc
		s.mu.Unlock()
		writeXML(w, cached)
		return
	}
	s.mu.Unlock()
	rendered := []byte(doc.Render())
	s.mu.Lock()
	s.wsil.services = count
	s.wsil.baseURL = base
	s.wsil.doc = rendered
	s.mu.Unlock()
	writeXML(w, rendered)
}

func writeXML(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
	_, _ = w.Write(doc)
}

// Transport returns an in-process transport that routes calls addressed
// to any of the given servers' endpoints straight into the owning
// provider's dispatch (serialising and reparsing envelopes for wire
// fidelity). Examples and tests use it to exercise the full stack without
// TCP.
func Transport(servers ...*Server) soap.Transport {
	return &serverTransport{servers: servers}
}

// Transport returns the in-process transport for this server alone.
func (s *Server) Transport() soap.Transport { return Transport(s) }

type serverTransport struct {
	servers []*Server
}

func (t *serverTransport) route(endpoint string) (*core.Provider, error) {
	var best *core.Provider
	bestLen := -1
	for _, s := range t.servers {
		s.mu.Lock()
		for _, m := range s.mounts {
			base := m.provider.BaseURL
			if (endpoint == base || strings.HasPrefix(endpoint, base+"/")) && len(base) > bestLen {
				best, bestLen = m.provider, len(base)
			}
		}
		s.mu.Unlock()
	}
	if best == nil {
		return nil, fmt.Errorf("rpc: no mounted provider serves endpoint %q", endpoint)
	}
	return best, nil
}

func (t *serverTransport) RoundTrip(endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	return t.RoundTripCtx(context.Background(), endpoint, action, req)
}

// RoundTripCtx implements soap.ContextTransport: the caller's context
// reaches the dispatched handler, so client deadlines and cancellation
// propagate through the in-process transport exactly as they do over HTTP.
func (t *serverTransport) RoundTripCtx(ctx context.Context, endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	best, err := t.route(endpoint)
	if err != nil {
		return nil, err
	}
	return best.Loopback().RoundTripCtx(ctx, endpoint, action, req)
}

// RoundTripRaw implements soap.RawTransport, so clients over a server
// transport can use the pooled response-parse path (core.Client.CallPooled
// and the CallText/CallStrings helpers).
func (t *serverTransport) RoundTripRaw(endpoint, action string, req *soap.Envelope, resp *bytes.Buffer) error {
	return t.RoundTripRawCtx(context.Background(), endpoint, action, req, resp)
}

// RoundTripRawCtx implements soap.ContextRawTransport; see RoundTripCtx.
func (t *serverTransport) RoundTripRawCtx(ctx context.Context, endpoint, action string, req *soap.Envelope, resp *bytes.Buffer) error {
	best, err := t.route(endpoint)
	if err != nil {
		return err
	}
	return best.Loopback().RoundTripRawCtx(ctx, endpoint, action, req, resp)
}
