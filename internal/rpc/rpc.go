package rpc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/databind"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// Handler is a typed operation implementation: it receives decoded,
// validated parameters and returns the out values in the order the
// operation's Out table declares them. The kernel handles all soap.Value
// encoding and decoding.
type Handler func(c *core.Context, in Args) ([]interface{}, error)

// Op is one declarative operation descriptor: the operation's contract
// (name, doc, typed params and returns) together with its implementation.
// The kernel derives the wsdl.Operation from the same table, so contract
// and implementation cannot drift.
type Op struct {
	// Name is the operation name.
	Name string
	// Doc is the human-readable description, emitted as wsdl:documentation.
	Doc string
	// In declares the input parameters in order.
	In []wsdl.Param
	// Out declares the output parameters in order.
	Out []wsdl.Param
	// Handle implements the operation.
	Handle Handler
}

// Def is a service descriptor: identity plus the operation table. It is
// the single source from which the kernel derives the WSDL interface,
// registers handlers, and wires parameter codecs.
type Def struct {
	// Name is the port type name, e.g. "BatchScriptGenerator".
	Name string
	// NS is the service namespace URI.
	NS string
	// Doc is the interface documentation.
	Doc string
	// Path optionally overrides the provider mount path ("/" + Name).
	Path string
	// Ops is the operation table in declaration order.
	Ops []Op
}

// Interface derives the abstract WSDL contract from the descriptor table.
func (d *Def) Interface() *wsdl.Interface {
	ops := make([]wsdl.Operation, len(d.Ops))
	for i, op := range d.Ops {
		ops[i] = wsdl.Operation{Name: op.Name, Doc: op.Doc, Input: op.In, Output: op.Out}
	}
	return &wsdl.Interface{Name: d.Name, TargetNS: d.NS, Doc: d.Doc, Operations: ops}
}

// Build compiles the descriptor into a deployable core.Service: the
// contract is derived from the table and every operation gets a kernel
// handler that decodes arguments, invokes the typed implementation, and
// encodes the returns.
func (d *Def) Build() (*core.Service, error) {
	svc := core.NewService(d.Interface())
	if d.Path != "" {
		svc.Path = d.Path
	}
	for i := range d.Ops {
		op := d.Ops[i]
		if op.Handle == nil {
			return nil, fmt.Errorf("rpc: %s.%s has no handler", d.Name, op.Name)
		}
		svc.Handle(op.Name, kernelHandler(d.Name, op))
	}
	return svc, nil
}

// MustBuild is Build for static wiring; it panics on a malformed table.
func (d *Def) MustBuild() *core.Service {
	svc, err := d.Build()
	if err != nil {
		panic(err)
	}
	return svc
}

// kernelHandler adapts one typed operation into the core handler shape.
func kernelHandler(service string, op Op) core.HandlerFunc {
	return func(ctx *core.Context, raw soap.Args) ([]soap.Value, error) {
		in, err := decodeArgs(service, op.In, raw)
		if err != nil {
			return nil, err
		}
		outs, err := op.Handle(ctx, in)
		if err != nil {
			return nil, err
		}
		return encodeReturns(service, op.Name, op.Out, outs)
	}
}

// Args carries the decoded, type-checked input parameters of one call.
// Missing optional parameters read as zero values; malformed values were
// already rejected by the kernel before the handler ran.
type Args struct {
	vals map[string]interface{}
}

// Str returns the named string parameter or "".
func (a Args) Str(name string) string {
	v, _ := a.vals[name].(string)
	return v
}

// Int returns the named int parameter or 0.
func (a Args) Int(name string) int {
	v, _ := a.vals[name].(int)
	return v
}

// Bool returns the named boolean parameter or false.
func (a Args) Bool(name string) bool {
	v, _ := a.vals[name].(bool)
	return v
}

// Float returns the named double parameter or 0.
func (a Args) Float(name string) float64 {
	v, _ := a.vals[name].(float64)
	return v
}

// Strings returns the named string-array parameter or nil.
func (a Args) Strings(name string) []string {
	v, _ := a.vals[name].([]string)
	return v
}

// XML returns the named literal XML parameter or nil.
func (a Args) XML(name string) *xmlutil.Element {
	v, _ := a.vals[name].(*xmlutil.Element)
	return v
}

// decodeArgs turns raw wire parameters into typed values, validating each
// present scalar against its declared XSD type through databind. A
// malformed value is a caller error and surfaces as a BadRequest portal
// error; an absent parameter decodes to the zero value, matching the
// tolerant behaviour of the paper's Python services.
func decodeArgs(service string, in []wsdl.Param, raw soap.Args) (Args, error) {
	vals := make(map[string]interface{}, len(in))
	badParam := func(name string, err error) error {
		return soap.NewPortalError(service, soap.ErrCodeBadRequest, "parameter %q: %v", name, err)
	}
	for _, p := range in {
		v, ok := raw.Get(p.Name)
		if !ok {
			continue
		}
		switch p.Type {
		case "int", "boolean", "double":
			text := strings.TrimSpace(v.Text)
			if text == "" {
				continue
			}
			if err := databind.ValidateValue(p.Type, text); err != nil {
				return Args{}, badParam(p.Name, err)
			}
			switch p.Type {
			case "int":
				n, _ := strconv.Atoi(text)
				vals[p.Name] = n
			case "boolean":
				b, _ := strconv.ParseBool(text)
				vals[p.Name] = b
			default:
				f, _ := strconv.ParseFloat(text, 64)
				vals[p.Name] = f
			}
		case "stringArray":
			items := make([]string, 0, len(v.Items))
			for _, item := range v.Items {
				items = append(items, item.Text)
			}
			vals[p.Name] = items
		case "xml":
			if v.XML != nil {
				vals[p.Name] = v.XML
			}
		default: // "string" and any future scalar alias
			vals[p.Name] = v.Text
		}
	}
	return Args{vals: vals}, nil
}

// encodeReturns binds the handler's ordered return values to the declared
// out parameters. A shape mismatch is a service implementation bug and is
// relayed as an InternalError portal error rather than a silent
// misencoding.
func encodeReturns(service, op string, out []wsdl.Param, vals []interface{}) ([]soap.Value, error) {
	if len(vals) != len(out) {
		return nil, soap.NewPortalError(service, soap.ErrCodeInternal,
			"operation %s returned %d values, contract declares %d", op, len(vals), len(out))
	}
	res := make([]soap.Value, len(out))
	for i, p := range out {
		sv, err := encodeOne(p, vals[i])
		if err != nil {
			return nil, soap.NewPortalError(service, soap.ErrCodeInternal,
				"operation %s return %q: %v", op, p.Name, err)
		}
		res[i] = sv
	}
	return res, nil
}

func encodeOne(p wsdl.Param, v interface{}) (soap.Value, error) {
	if sv, ok := v.(soap.Value); ok { // escape hatch for pre-encoded values
		return sv, nil
	}
	switch p.Type {
	case "string":
		s, ok := v.(string)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want string", v)
		}
		return soap.Str(p.Name, s), nil
	case "int":
		n, ok := v.(int)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want int", v)
		}
		return soap.Int(p.Name, n), nil
	case "boolean":
		b, ok := v.(bool)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want bool", v)
		}
		return soap.Bool(p.Name, b), nil
	case "double":
		f, ok := v.(float64)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want float64", v)
		}
		return soap.Value{Name: p.Name, Type: "double", Text: strconv.FormatFloat(f, 'g', -1, 64)}, nil
	case "stringArray":
		if v == nil {
			return soap.StrArray(p.Name, nil), nil
		}
		items, ok := v.([]string)
		if !ok {
			return soap.Value{}, fmt.Errorf("got %T, want []string", v)
		}
		return soap.StrArray(p.Name, items), nil
	case "xml":
		if v == nil {
			return soap.Value{}, fmt.Errorf("got nil, want *xmlutil.Element")
		}
		el, ok := v.(*xmlutil.Element)
		if !ok {
			return soap.Value{}, fmt.Errorf("got %T, want *xmlutil.Element", v)
		}
		return soap.XMLDoc(p.Name, el), nil
	default:
		return soap.Value{}, fmt.Errorf("unsupported declared type %q", p.Type)
	}
}

// Ret packages a handler's return values; sugar for []interface{}{...}.
func Ret(vals ...interface{}) []interface{} { return vals }

// --- Param constructors -------------------------------------------------------

// Str declares a string parameter.
func Str(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "string"} }

// Int declares an int parameter.
func Int(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "int"} }

// Bool declares a boolean parameter.
func Bool(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "boolean"} }

// Float declares a double parameter.
func Float(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "double"} }

// Strs declares a string-array parameter.
func Strs(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "stringArray"} }

// XML declares a literal-XML parameter.
func XML(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "xml"} }

// StrParams declares a string parameter per name, in order.
func StrParams(names ...string) []wsdl.Param {
	out := make([]wsdl.Param, 0, len(names))
	for _, n := range names {
		out = append(out, Str(n))
	}
	return out
}
