package rpc

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/databind"
	"repro/internal/soap"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// Handler is a typed operation implementation: it receives decoded,
// validated parameters and returns the out values in the order the
// operation's Out table declares them. The kernel handles all soap.Value
// encoding and decoding.
type Handler func(c *core.Context, in Args) ([]interface{}, error)

// Op is one declarative operation descriptor: the operation's contract
// (name, doc, typed params and returns) together with its implementation.
// The kernel derives the wsdl.Operation from the same table, so contract
// and implementation cannot drift.
type Op struct {
	// Name is the operation name.
	Name string
	// Doc is the human-readable description, emitted as wsdl:documentation.
	Doc string
	// In declares the input parameters in order.
	In []wsdl.Param
	// Out declares the output parameters in order.
	Out []wsdl.Param
	// Idempotent declares that repeating the operation observes the same
	// effect as invoking it once (reads, queries, absolute writes), which
	// permits clients to retry it on ambiguous transport failures. Leave
	// false for operations with cumulative side effects (submissions,
	// appends, counters).
	Idempotent bool
	// Handle implements the operation.
	Handle Handler
}

// Def is a service descriptor: identity plus the operation table. It is
// the single source from which the kernel derives the WSDL interface,
// registers handlers, and wires parameter codecs.
type Def struct {
	// Name is the port type name, e.g. "BatchScriptGenerator".
	Name string
	// NS is the service namespace URI.
	NS string
	// Doc is the interface documentation.
	Doc string
	// Path optionally overrides the provider mount path ("/" + Name).
	Path string
	// Ops is the operation table in declaration order.
	Ops []Op
}

// Interface derives the abstract WSDL contract from the descriptor table.
func (d *Def) Interface() *wsdl.Interface {
	ops := make([]wsdl.Operation, len(d.Ops))
	for i, op := range d.Ops {
		ops[i] = wsdl.Operation{Name: op.Name, Doc: op.Doc, Input: op.In, Output: op.Out, Idempotent: op.Idempotent}
	}
	return &wsdl.Interface{Name: d.Name, TargetNS: d.NS, Doc: d.Doc, Operations: ops}
}

// Build compiles the descriptor into a deployable core.Service: the
// contract is derived from the table, every operation gets a kernel
// handler that decodes arguments, invokes the typed implementation, and
// encodes the returns, and each operation's parameter table is compiled
// into a codec (the ParamDecoder seam) so requests can be decoded straight
// from the streaming token reader on the fast path.
func (d *Def) Build() (*core.Service, error) {
	svc := core.NewService(d.Interface())
	if d.Path != "" {
		svc.Path = d.Path
	}
	codecs := &streamCodecs{byOp: make(map[string]*opCodec, len(d.Ops))}
	for i := range d.Ops {
		op := d.Ops[i]
		if op.Handle == nil {
			return nil, fmt.Errorf("rpc: %s.%s has no handler", d.Name, op.Name)
		}
		c := compileCodec(d.Name, op)
		codecs.byOp[op.Name] = c
		svc.Handle(op.Name, kernelHandler(c, op))
	}
	svc.Stream = codecs
	return svc, nil
}

// MustBuild is Build for static wiring; it panics on a malformed table.
func (d *Def) MustBuild() *core.Service {
	svc, err := d.Build()
	if err != nil {
		panic(err)
	}
	return svc
}

// kernelHandler adapts one typed operation into the core handler shape.
// Arguments normally decode from the raw tree-parsed values; when the
// request came in through the streaming fast path the provider has already
// run the codec over the wire tokens and the typed Args ride in on
// ctx.Decoded, so the tree decode is skipped entirely.
func kernelHandler(c *opCodec, op Op) core.HandlerFunc {
	return func(ctx *core.Context, raw soap.Args) ([]soap.Value, error) {
		in, ok := ctx.Decoded.(Args)
		if !ok || in.op != c {
			var err error
			in, err = c.decodeTree(raw)
			if err != nil {
				return nil, err
			}
			// The kernel created this scratch, so the kernel recycles it;
			// fast-path Args are released by the provider (ReleaseStream)
			// after the whole dispatch. Handlers must not retain in.
			defer in.scratch.release()
		}
		outs, err := op.Handle(ctx, in)
		if err != nil {
			return nil, err
		}
		return encodeReturns(c.service, op.Name, op.Out, outs)
	}
}

// opCodec is one operation's compiled parameter codec — the ParamDecoder
// seam. Build derives it from the Op's wsdl.Param table once, and both
// decode paths (streaming tokens and raw tree values) run through it, so
// their validation semantics cannot drift.
type opCodec struct {
	service string
	params  []wsdl.Param
	// streamable is false when any declared In parameter is xml-typed:
	// literal XML payloads need the element tree, so the whole operation
	// always takes the tree path.
	streamable bool
}

func compileCodec(service string, op Op) *opCodec {
	c := &opCodec{service: service, params: op.In, streamable: true}
	for _, p := range op.In {
		if p.Type == "xml" {
			c.streamable = false
		}
	}
	return c
}

// index returns the declared position of a parameter name, or -1.
func (c *opCodec) index(name string) int {
	for i := range c.params {
		if c.params[i].Name == name {
			return i
		}
	}
	return -1
}

// argSlot is one decoded parameter: only the field matching the declared
// type is ever populated, so the Args accessors read their field
// unconditionally and absent or differently-typed parameters fall out as
// zero values, exactly as the old map-of-interface representation did.
type argSlot struct {
	// seen marks that a wire value already claimed this slot: the first
	// occurrence of a name wins, matching soap.Args.Get.
	seen bool
	str  string
	num  int
	fl   float64
	b    bool
	strs []string
	xml  *xmlutil.Element
}

// decodeScratch is the pooled per-request decode state: the typed slots
// both decode paths fill and the raw wire-value slice the streaming path
// decodes into. Pooling it removes the two per-request slice allocations
// that parallel load multiplies into GC pressure. The existing
// handler-retention contract covers it: handlers and middleware must not
// retain request arguments past their return, so once the dispatch is
// over the scratch can be zeroed and recycled.
type decodeScratch struct {
	slots []argSlot
	raw   []soap.Value
}

// maxPooledRawVals bounds the raw capacity a pooled scratch may retain, so
// one request with an absurd parameter list cannot pin that memory in the
// pool forever.
const maxPooledRawVals = 128

var scratchPool = sync.Pool{New: func() interface{} { return new(decodeScratch) }}

func acquireScratch(nparams int) *decodeScratch {
	sc := scratchPool.Get().(*decodeScratch)
	if cap(sc.slots) < nparams {
		sc.slots = make([]argSlot, nparams)
	}
	sc.slots = sc.slots[:nparams]
	if sc.raw == nil {
		// One spare slot beyond the declared arity: the end-of-entry probe
		// decodes into a slot before discovering it is the end tag, and the
		// spare keeps that probe from growing the slice on exact-arity calls.
		sc.raw = make([]soap.Value, 0, nparams+1)
	}
	sc.raw = sc.raw[:0]
	return sc
}

// release zeroes every slot and raw value the request decoded into — so
// the pool never pins request data — and recycles the scratch.
func (sc *decodeScratch) release() {
	for i := range sc.slots {
		sc.slots[i] = argSlot{}
	}
	raw := sc.raw[:cap(sc.raw)]
	for i := range raw {
		raw[i] = soap.Value{}
	}
	if cap(sc.raw) > maxPooledRawVals {
		sc.raw = nil
	}
	scratchPool.Put(sc)
}

// Args carries the decoded, type-checked input parameters of one call.
// Missing optional parameters read as zero values; malformed values were
// already rejected by the kernel before the handler ran.
type Args struct {
	op    *opCodec
	slots []argSlot
	// scratch, when non-nil, is the pooled backing store of slots (and on
	// the streaming path the raw values too); whoever created the Args
	// releases it after the dispatch completes.
	scratch *decodeScratch
}

func (a Args) slot(name string) *argSlot {
	if a.op == nil {
		return nil
	}
	if i := a.op.index(name); i >= 0 {
		return &a.slots[i]
	}
	return nil
}

// Str returns the named string parameter or "".
func (a Args) Str(name string) string {
	if s := a.slot(name); s != nil {
		return s.str
	}
	return ""
}

// Int returns the named int parameter or 0.
func (a Args) Int(name string) int {
	if s := a.slot(name); s != nil {
		return s.num
	}
	return 0
}

// Bool returns the named boolean parameter or false.
func (a Args) Bool(name string) bool {
	if s := a.slot(name); s != nil {
		return s.b
	}
	return false
}

// Float returns the named double parameter or 0.
func (a Args) Float(name string) float64 {
	if s := a.slot(name); s != nil {
		return s.fl
	}
	return 0
}

// Strings returns the named string-array parameter or nil.
func (a Args) Strings(name string) []string {
	if s := a.slot(name); s != nil {
		return s.strs
	}
	return nil
}

// XML returns the named literal XML parameter or nil.
func (a Args) XML(name string) *xmlutil.Element {
	if s := a.slot(name); s != nil {
		return s.xml
	}
	return nil
}

// decodeTree turns raw tree-parsed wire parameters into typed values,
// validating each present scalar against its declared XSD type through
// databind. A malformed value is a caller error and surfaces as a
// BadRequest portal error; an absent parameter decodes to the zero value,
// matching the tolerant behaviour of the paper's Python services.
func (c *opCodec) decodeTree(raw soap.Args) (Args, error) {
	sc := acquireScratch(len(c.params))
	slots := sc.slots
	for i, p := range c.params {
		v, ok := raw.Get(p.Name)
		if !ok {
			continue
		}
		if err := decodeParam(p.Type, &v, &slots[i]); err != nil {
			sc.release()
			return Args{}, soap.NewPortalError(c.service, soap.ErrCodeBadRequest,
				"parameter %q: %v", p.Name, err)
		}
	}
	return Args{op: c, slots: slots, scratch: sc}, nil
}

// decodeStream runs the codec over the streaming token reader, producing
// both the typed Args and the raw wire values the middleware chain sees
// (identical to what the tree path's ParseCall would produce, so caching
// and stats middleware behave the same on both paths). ok=false — a wire
// shape outside the streaming subset or a value failing validation —
// means the caller must fall back; the tree path then reproduces the
// exact historic fault.
func (c *opCodec) decodeStream(r *soap.BodyReader) (Args, []soap.Value, bool) {
	if !c.streamable {
		return Args{}, nil, false
	}
	sc := acquireScratch(len(c.params))
	slots := sc.slots
	raw := sc.raw
	fail := func() (Args, []soap.Value, bool) {
		sc.raw = raw
		sc.release()
		return Args{}, nil, false
	}
	for {
		// Decode into the raw slice in place: the Value never travels
		// through a return-and-append copy chain.
		if len(raw) == cap(raw) {
			raw = append(raw, soap.Value{})
		} else {
			raw = raw[:len(raw)+1]
		}
		v := &raw[len(raw)-1]
		done, ok := r.ReadValueInto(v)
		if !ok {
			return fail()
		}
		if done {
			raw = raw[:len(raw)-1]
			break
		}
		idx := c.index(v.Name)
		if idx < 0 {
			continue // undeclared parameters are carried raw but not typed
		}
		s := &slots[idx]
		if s.seen {
			continue // first wire occurrence wins, as soap.Args.Get does
		}
		if err := decodeParam(c.params[idx].Type, v, s); err != nil {
			return fail()
		}
	}
	sc.raw = raw
	return Args{op: c, slots: slots, scratch: sc}, raw, true
}

// decodeParam decodes one wire value into its slot per the declared type.
// Both decode paths funnel through here.
func decodeParam(declaredType string, v *soap.Value, s *argSlot) error {
	s.seen = true
	switch declaredType {
	case "int", "boolean", "double":
		text := strings.TrimSpace(v.Text)
		if text == "" {
			return nil
		}
		if err := databind.ValidateValue(declaredType, text); err != nil {
			return err
		}
		switch declaredType {
		case "int":
			s.num, _ = strconv.Atoi(text)
		case "boolean":
			s.b, _ = strconv.ParseBool(text)
		default:
			s.fl, _ = strconv.ParseFloat(text, 64)
		}
	case "stringArray":
		items := make([]string, 0, len(v.Items))
		for _, item := range v.Items {
			items = append(items, item.Text)
		}
		s.strs = items
	case "xml":
		if v.XML != nil {
			s.xml = v.XML
		}
	default: // "string" and any future scalar alias
		s.str = v.Text
	}
	return nil
}

// streamCodecs implements core.StreamDecoder over one service's compiled
// operation codecs.
type streamCodecs struct {
	byOp map[string]*opCodec
}

func (sc *streamCodecs) DecodeCallStream(op string, r *soap.BodyReader) (interface{}, []soap.Value, bool) {
	c := sc.byOp[op]
	if c == nil {
		return nil, nil, false
	}
	in, raw, ok := c.decodeStream(r)
	if !ok {
		return nil, nil, false
	}
	return in, raw, true
}

// ReleaseStream implements core.StreamReleaser: the provider hands back
// the decode products once the dispatch is over (or abandoned for the
// tree fallback) and the pooled scratch behind them is recycled.
func (sc *streamCodecs) ReleaseStream(decoded interface{}, _ []soap.Value) {
	if in, ok := decoded.(Args); ok && in.scratch != nil {
		in.scratch.release()
	}
}

// encodeReturns binds the handler's ordered return values to the declared
// out parameters. A shape mismatch is a service implementation bug and is
// relayed as an InternalError portal error rather than a silent
// misencoding.
func encodeReturns(service, op string, out []wsdl.Param, vals []interface{}) ([]soap.Value, error) {
	if len(vals) != len(out) {
		return nil, soap.NewPortalError(service, soap.ErrCodeInternal,
			"operation %s returned %d values, contract declares %d", op, len(vals), len(out))
	}
	res := make([]soap.Value, len(out))
	for i, p := range out {
		sv, err := encodeOne(p, vals[i])
		if err != nil {
			return nil, soap.NewPortalError(service, soap.ErrCodeInternal,
				"operation %s return %q: %v", op, p.Name, err)
		}
		res[i] = sv
	}
	return res, nil
}

func encodeOne(p wsdl.Param, v interface{}) (soap.Value, error) {
	if sv, ok := v.(soap.Value); ok { // escape hatch for pre-encoded values
		return sv, nil
	}
	switch p.Type {
	case "string":
		s, ok := v.(string)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want string", v)
		}
		return soap.Str(p.Name, s), nil
	case "int":
		n, ok := v.(int)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want int", v)
		}
		return soap.Int(p.Name, n), nil
	case "boolean":
		b, ok := v.(bool)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want bool", v)
		}
		return soap.Bool(p.Name, b), nil
	case "double":
		f, ok := v.(float64)
		if !ok && v != nil {
			return soap.Value{}, fmt.Errorf("got %T, want float64", v)
		}
		return soap.Value{Name: p.Name, Type: "double", Text: strconv.FormatFloat(f, 'g', -1, 64)}, nil
	case "stringArray":
		if v == nil {
			return soap.StrArray(p.Name, nil), nil
		}
		items, ok := v.([]string)
		if !ok {
			return soap.Value{}, fmt.Errorf("got %T, want []string", v)
		}
		return soap.StrArray(p.Name, items), nil
	case "xml":
		if v == nil {
			return soap.Value{}, fmt.Errorf("got nil, want *xmlutil.Element")
		}
		el, ok := v.(*xmlutil.Element)
		if !ok {
			return soap.Value{}, fmt.Errorf("got %T, want *xmlutil.Element", v)
		}
		return soap.XMLDoc(p.Name, el), nil
	default:
		return soap.Value{}, fmt.Errorf("unsupported declared type %q", p.Type)
	}
}

// Ret packages a handler's return values; sugar for []interface{}{...}.
func Ret(vals ...interface{}) []interface{} { return vals }

// --- Param constructors -------------------------------------------------------

// Str declares a string parameter.
func Str(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "string"} }

// Int declares an int parameter.
func Int(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "int"} }

// Bool declares a boolean parameter.
func Bool(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "boolean"} }

// Float declares a double parameter.
func Float(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "double"} }

// Strs declares a string-array parameter.
func Strs(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "stringArray"} }

// XML declares a literal-XML parameter.
func XML(name string) wsdl.Param { return wsdl.Param{Name: name, Type: "xml"} }

// StrParams declares a string parameter per name, in order.
func StrParams(names ...string) []wsdl.Param {
	out := make([]wsdl.Param, 0, len(names))
	for _, n := range names {
		out = append(out, Str(n))
	}
	return out
}
