package rpc

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/saml"
	"repro/internal/soap"
	"repro/internal/xmlutil"
)

// AssertionVerifier abstracts how a provider reaches the Authentication
// Service: in-process (authsvc.LocalVerifier) or over SOAP
// (authsvc.Client). Declared here structurally so the kernel does not
// depend on the authsvc package it also hosts.
type AssertionVerifier interface {
	// Verify returns the authenticated principal, or an error.
	Verify(a *saml.Assertion) (string, error)
}

// RequireAssertion enforces the Figure 2 protocol: every request must
// carry a SAML assertion the Authentication Service accepts; the verified
// principal lands in the request context. Denials are relayed as Client
// faults (the caller, not the service, is at fault) carrying the
// portal-standard AuthenticationFailed detail.
func RequireAssertion(v AssertionVerifier) core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			a, err := saml.FromEnvelope(ctx.Envelope)
			if err != nil {
				return nil, authFault(soap.ErrCodeBadRequest, "malformed assertion: %v", err)
			}
			if a == nil {
				return nil, authFault(soap.ErrCodeAuthFailed, "request carries no SAML assertion")
			}
			principal, err := v.Verify(a)
			if err != nil {
				return nil, authFault(soap.ErrCodeAuthFailed, "assertion rejected: %v", err)
			}
			ctx.Principal = principal
			return next(ctx, args)
		}
	}
}

// authFault builds a Client fault relaying a portal-standard error detail,
// so clients both see the SOAP-level blame (Client) and can decode the
// portal error code.
func authFault(code, format string, a ...interface{}) *soap.Fault {
	pe := soap.NewPortalError("SPP", code, format, a...)
	return &soap.Fault{
		Code:   soap.FaultClient,
		String: pe.Message,
		Detail: []*xmlutil.Element{pe.Element()},
	}
}

// Recover converts a panicking handler into a SOAP Server fault instead of
// tearing down the provider goroutine, keeping one bad request from
// killing the server.
func Recover() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) (vals []soap.Value, err error) {
			defer func() {
				if r := recover(); r != nil {
					vals = nil
					err = &soap.Fault{
						Code:   soap.FaultServer,
						String: fmt.Sprintf("panic in %s: %v", ctx.Operation, r),
					}
				}
			}()
			return next(ctx, args)
		}
	}
}

// Logging emits one structured line per request: namespace, operation,
// principal, duration, and outcome. A nil logger uses the process default.
func Logging(l *log.Logger) core.Middleware {
	if l == nil {
		l = log.Default()
	}
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			start := time.Now()
			vals, err := next(ctx, args)
			outcome := "ok"
			if err != nil {
				if pe := soap.AsPortalError(err); pe != nil {
					outcome = pe.Code
				} else {
					outcome = "fault"
				}
			}
			principal := ctx.Principal
			if principal == "" {
				principal = "-"
			}
			l.Printf("rpc ns=%s op=%s principal=%s dur=%s outcome=%s",
				ctx.ServiceNS, ctx.Operation, principal, time.Since(start).Round(time.Microsecond), outcome)
			return vals, err
		}
	}
}

// ConcurrencyLimit bounds how many requests execute at once in the chain
// below it; excess requests wait. Apply per service for per-service
// limits, or provider-wide for a global one.
func ConcurrencyLimit(n int) core.Middleware {
	if n <= 0 {
		n = 1
	}
	sem := make(chan struct{}, n)
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			sem <- struct{}{}
			defer func() { <-sem }()
			return next(ctx, args)
		}
	}
}

// OpStats is the accumulated view of one operation.
type OpStats struct {
	// Count is the number of completed requests.
	Count uint64 `json:"count"`
	// Errors counts requests that ended in any error or fault.
	Errors uint64 `json:"errors"`
	// TotalNS and MaxNS accumulate handler latency.
	TotalNS int64 `json:"totalNs"`
	MaxNS   int64 `json:"maxNs"`
}

// DecodeStats counts which decode path served the requests flowing
// through one Stats collector: the streaming fast path (envelope tokens
// straight into typed args) or the pooled tree path it falls back to. A
// fast-path regression — a contract change or middleware that silently
// forces every request onto the tree path — shows up here instead of only
// as a latency drift.
type DecodeStats struct {
	// FastPath counts requests decoded by the streaming fast path.
	FastPath uint64 `json:"fastPath"`
	// TreePath counts requests that went through the pooled tree decode,
	// whether dispatched that way or fallen back from the fast path.
	TreePath uint64 `json:"treePath"`
}

// Stats counts requests and accumulates latency per operation, and serves
// the snapshot as a /healthz-style JSON endpoint.
type Stats struct {
	mu     sync.Mutex
	start  time.Time
	ops    map[string]*OpStats
	decode DecodeStats
}

// NewStats returns an empty stats collector.
func NewStats() *Stats {
	return &Stats{start: time.Now(), ops: map[string]*OpStats{}}
}

// Middleware returns the recording middleware. One Stats value may back
// several providers; operations are keyed "namespace#operation".
func (s *Stats) Middleware() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			start := time.Now()
			vals, err := next(ctx, args)
			// ctx.Decoded is only ever set by the streaming fast path
			// (Provider.DispatchRaw), so its presence identifies the
			// decode path that produced this request.
			s.record(ctx.ServiceNS+"#"+ctx.Operation, time.Since(start), err, ctx.Decoded != nil)
			return vals, err
		}
	}
}

func (s *Stats) record(key string, d time.Duration, err error, fastPath bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.ops[key]
	if op == nil {
		op = &OpStats{}
		s.ops[key] = op
	}
	op.Count++
	if err != nil {
		op.Errors++
	}
	if fastPath {
		s.decode.FastPath++
	} else {
		s.decode.TreePath++
	}
	ns := d.Nanoseconds()
	op.TotalNS += ns
	if ns > op.MaxNS {
		op.MaxNS = ns
	}
}

// Snapshot returns a copy of the per-operation stats.
func (s *Stats) Snapshot() map[string]OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]OpStats, len(s.ops))
	for k, v := range s.ops {
		out[k] = *v
	}
	return out
}

// DecodeSnapshot returns the decode-path counters.
func (s *Stats) DecodeSnapshot() DecodeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decode
}

// ServeHTTP serves the health document: status, uptime, and per-operation
// counters, deterministically ordered.
func (s *Stats) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type opLine struct {
		Operation string `json:"operation"`
		OpStats
	}
	doc := struct {
		Status     string      `json:"status"`
		UptimeSecs float64     `json:"uptimeSeconds"`
		Decode     DecodeStats `json:"decode"`
		Operations []opLine    `json:"operations"`
	}{Status: "ok", UptimeSecs: time.Since(s.start).Seconds(), Decode: s.DecodeSnapshot()}
	for _, k := range keys {
		doc.Operations = append(doc.Operations, opLine{Operation: k, OpStats: snap[k]})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
