package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/saml"
	"repro/internal/soap"
	"repro/internal/xmlutil"
)

// AssertionVerifier abstracts how a provider reaches the Authentication
// Service: in-process (authsvc.LocalVerifier) or over SOAP
// (authsvc.Client). Declared here structurally so the kernel does not
// depend on the authsvc package it also hosts.
type AssertionVerifier interface {
	// Verify returns the authenticated principal, or an error.
	Verify(a *saml.Assertion) (string, error)
}

// RequireAssertion enforces the Figure 2 protocol: every request must
// carry a SAML assertion the Authentication Service accepts; the verified
// principal lands in the request context. Denials are relayed as Client
// faults (the caller, not the service, is at fault) carrying the
// portal-standard AuthenticationFailed detail.
func RequireAssertion(v AssertionVerifier) core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			a, err := saml.FromEnvelope(ctx.Envelope)
			if err != nil {
				return nil, authFault(soap.ErrCodeBadRequest, "malformed assertion: %v", err)
			}
			if a == nil {
				return nil, authFault(soap.ErrCodeAuthFailed, "request carries no SAML assertion")
			}
			principal, err := v.Verify(a)
			if err != nil {
				return nil, authFault(soap.ErrCodeAuthFailed, "assertion rejected: %v", err)
			}
			ctx.Principal = principal
			return next(ctx, args)
		}
	}
}

// authFault builds a Client fault relaying a portal-standard error detail,
// so clients both see the SOAP-level blame (Client) and can decode the
// portal error code.
func authFault(code, format string, a ...interface{}) *soap.Fault {
	pe := soap.NewPortalError("SPP", code, format, a...)
	return &soap.Fault{
		Code:   soap.FaultClient,
		String: pe.Message,
		Detail: []*xmlutil.Element{pe.Element()},
	}
}

// Recover converts a panicking handler into a SOAP Server fault instead of
// tearing down the provider goroutine, keeping one bad request from
// killing the server.
func Recover() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) (vals []soap.Value, err error) {
			defer func() {
				if r := recover(); r != nil {
					vals = nil
					err = &soap.Fault{
						Code:   soap.FaultServer,
						String: fmt.Sprintf("panic in %s: %v", ctx.Operation, r),
					}
				}
			}()
			return next(ctx, args)
		}
	}
}

// Logging emits one structured line per request: namespace, operation,
// principal, duration, and outcome. A nil logger uses the process default.
func Logging(l *log.Logger) core.Middleware {
	if l == nil {
		l = log.Default()
	}
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			start := time.Now()
			vals, err := next(ctx, args)
			outcome := "ok"
			if err != nil {
				if pe := soap.AsPortalError(err); pe != nil {
					outcome = pe.Code
				} else {
					outcome = "fault"
				}
			}
			principal := ctx.Principal
			if principal == "" {
				principal = "-"
			}
			l.Printf("rpc ns=%s op=%s principal=%s dur=%s outcome=%s",
				ctx.ServiceNS, ctx.Operation, principal, time.Since(start).Round(time.Microsecond), outcome)
			return vals, err
		}
	}
}

// ConcurrencyLimit bounds how many requests execute at once in the chain
// below it; excess requests wait. Apply per service for per-service
// limits, or provider-wide for a global one.
func ConcurrencyLimit(n int) core.Middleware {
	if n <= 0 {
		n = 1
	}
	sem := make(chan struct{}, n)
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			sem <- struct{}{}
			defer func() { <-sem }()
			return next(ctx, args)
		}
	}
}

// OpStats is the accumulated view of one operation.
type OpStats struct {
	// Count is the number of completed requests.
	Count uint64 `json:"count"`
	// Errors counts requests that ended in any error or fault.
	Errors uint64 `json:"errors"`
	// TotalNS and MaxNS accumulate handler latency.
	TotalNS int64 `json:"totalNs"`
	MaxNS   int64 `json:"maxNs"`
}

// DecodeStats counts which decode path served the requests flowing
// through one Stats collector: the streaming fast path (envelope tokens
// straight into typed args) or the pooled tree path it falls back to. A
// fast-path regression — a contract change or middleware that silently
// forces every request onto the tree path — shows up here instead of only
// as a latency drift.
type DecodeStats struct {
	// FastPath counts requests decoded by the streaming fast path.
	FastPath uint64 `json:"fastPath"`
	// TreePath counts requests that went through the pooled tree decode,
	// whether dispatched that way or fallen back from the fast path.
	TreePath uint64 `json:"treePath"`
}

// opCounters is the lock-free accumulator behind one operation: plain
// atomics for the monotonic counters and a CAS loop for the latency
// high-water mark. Recording a request takes no lock at all, so stats
// collection never serialises concurrent requests.
type opCounters struct {
	count   atomic.Uint64
	errors  atomic.Uint64
	totalNS atomic.Int64
	maxNS   atomic.Int64
}

// snapshot reads the counters individually; under concurrent recording the
// fields may straddle an in-flight request (count without its totalNS yet),
// which is consistent enough for a health endpoint.
func (c *opCounters) snapshot() OpStats {
	return OpStats{
		Count:   c.count.Load(),
		Errors:  c.errors.Load(),
		TotalNS: c.totalNS.Load(),
		MaxNS:   c.maxNS.Load(),
	}
}

// Stats counts requests and accumulates latency per operation, and serves
// the snapshot as a /healthz-style JSON endpoint. Recording is lock-free:
// per-operation accumulators live in a sync.Map (populated once per
// operation, read thereafter) and all counters are atomics.
type Stats struct {
	start time.Time
	ops   sync.Map // "ns#op" -> *opCounters
	decodeFast,
	decodeTree atomic.Uint64

	// inFlight gauges requests currently inside the middleware chain;
	// graceful drain waits on it reaching zero via WaitIdle.
	inFlight atomic.Int64
	// idleMu guards idleCh, the drain signal WaitIdle parks on: created
	// lazily by a waiter, closed by the request that takes the gauge to
	// zero. The gauge itself stays lock-free — the mutex is touched only
	// on the zero crossing and while a drain is actually waiting.
	idleMu sync.Mutex
	idleCh chan struct{}
	// timeouts counts requests answered with the portal Timeout fault,
	// shed those rejected ServerBusy, drained those rejected while the
	// server was draining (ServiceUnavailable).
	timeouts atomic.Uint64
	shed     atomic.Uint64
	drained  atomic.Uint64

	// cachesMu guards cache registration (startup-time only); reads copy
	// the slice header under the lock.
	cachesMu sync.Mutex
	caches   []namedCache

	// resilMu guards breaker/retry registration (wiring-time only).
	resilMu  sync.Mutex
	breakers []namedBreakers
	retries  []namedRetry

	// counters holds ad-hoc named counters (AddCounter) surfaced in the
	// health document — failure classes that belong to no one operation,
	// such as the gateway's relay.write_errors. Lock-free: name ->
	// *atomic.Uint64, populated once per name.
	counters sync.Map
}

type namedCache struct {
	name  string
	cache *ResponseCache
}

type namedBreakers struct {
	name string
	set  *resilience.BreakerSet
}

type namedRetry struct {
	name   string
	policy *resilience.RetryPolicy
}

// NewStats returns an empty stats collector.
func NewStats() *Stats {
	return &Stats{start: time.Now()}
}

// AddCounter increments the named ad-hoc counter, creating it on first use.
// Safe for concurrent use from hot paths: after the first increment of a
// name this is one sync.Map read plus one atomic add.
func (s *Stats) AddCounter(name string, delta uint64) {
	c, ok := s.counters.Load(name)
	if !ok {
		c, _ = s.counters.LoadOrStore(name, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(delta)
}

// Counter returns the named ad-hoc counter's current value (0 if it was
// never incremented).
func (s *Stats) Counter(name string) uint64 {
	c, ok := s.counters.Load(name)
	if !ok {
		return 0
	}
	return c.(*atomic.Uint64).Load()
}

// CounterSnapshot returns every ad-hoc counter, for the health document.
func (s *Stats) CounterSnapshot() map[string]uint64 {
	out := map[string]uint64{}
	s.counters.Range(func(k, v interface{}) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// RegisterCache exposes a ResponseCache's hit/miss/entry counters in the
// health document under the given name. Call at wiring time, once per
// cache.
func (s *Stats) RegisterCache(name string, c *ResponseCache) {
	s.cachesMu.Lock()
	defer s.cachesMu.Unlock()
	s.caches = append(s.caches, namedCache{name: name, cache: c})
}

// RegisterBreakers exposes a client-side breaker set's per-endpoint
// circuit states in the health document. Call at wiring time.
func (s *Stats) RegisterBreakers(name string, set *resilience.BreakerSet) {
	s.resilMu.Lock()
	defer s.resilMu.Unlock()
	s.breakers = append(s.breakers, namedBreakers{name: name, set: set})
}

// RegisterRetry exposes a retry policy's granted-retry counter in the
// health document. Call at wiring time.
func (s *Stats) RegisterRetry(name string, p *resilience.RetryPolicy) {
	s.resilMu.Lock()
	defer s.resilMu.Unlock()
	s.retries = append(s.retries, namedRetry{name: name, policy: p})
}

// CacheStats is one registered cache's counters as served by /healthz.
type CacheStats struct {
	Name    string `json:"name"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// CacheSnapshot reports the registered caches in registration order.
func (s *Stats) CacheSnapshot() []CacheStats {
	s.cachesMu.Lock()
	caches := s.caches
	s.cachesMu.Unlock()
	out := make([]CacheStats, 0, len(caches))
	for _, nc := range caches {
		hits, misses, entries := nc.cache.Stats()
		out = append(out, CacheStats{Name: nc.name, Hits: hits, Misses: misses, Entries: entries})
	}
	return out
}

// Middleware returns the recording middleware. One Stats value may back
// several providers; operations are keyed "namespace#operation".
func (s *Stats) Middleware() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			start := time.Now()
			s.inFlight.Add(1)
			vals, err := next(ctx, args)
			s.exit()
			// ctx.Decoded is only ever set by the streaming fast path
			// (Provider.DispatchRaw), so its presence identifies the
			// decode path that produced this request.
			s.record(ctx.ServiceNS+"#"+ctx.Operation, time.Since(start), err, ctx.Decoded != nil)
			return vals, err
		}
	}
}

// Record counts one operation outcome that did not flow through the
// middleware chain — the federated gateway uses it to surface per-op
// forwarding counts and latencies at its own /healthz. Unlike the
// middleware it touches neither the in-flight gauge nor the decode-path
// counters (a relayed request is never decoded here).
func (s *Stats) Record(key string, d time.Duration, err error) {
	s.recordOutcome(key, d, err)
}

func (s *Stats) record(key string, d time.Duration, err error, fastPath bool) {
	s.recordOutcome(key, d, err)
	if fastPath {
		s.decodeFast.Add(1)
	} else {
		s.decodeTree.Add(1)
	}
}

func (s *Stats) recordOutcome(key string, d time.Duration, err error) {
	v, ok := s.ops.Load(key)
	if !ok {
		// First request for this operation: race to install the accumulator;
		// losers adopt the winner's.
		v, _ = s.ops.LoadOrStore(key, &opCounters{})
	}
	op := v.(*opCounters)
	op.count.Add(1)
	if err != nil {
		op.errors.Add(1)
		// Classify the resilience outcomes so the health document shows
		// degradation (timeouts, shedding, drain) separately from plain
		// handler errors.
		if pe := soap.AsPortalError(err); pe != nil {
			switch pe.Code {
			case soap.ErrCodeTimeout:
				s.timeouts.Add(1)
			case soap.ErrCodeServerBusy:
				s.shed.Add(1)
			case soap.ErrCodeUnavailable:
				s.drained.Add(1)
			}
		}
	}
	ns := d.Nanoseconds()
	op.totalNS.Add(ns)
	for {
		cur := op.maxNS.Load()
		if ns <= cur || op.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot returns a copy of the per-operation stats (weakly consistent
// under concurrent recording).
func (s *Stats) Snapshot() map[string]OpStats {
	out := map[string]OpStats{}
	s.ops.Range(func(k, v any) bool {
		out[k.(string)] = v.(*opCounters).snapshot()
		return true
	})
	return out
}

// DecodeSnapshot returns the decode-path counters.
func (s *Stats) DecodeSnapshot() DecodeStats {
	return DecodeStats{FastPath: s.decodeFast.Load(), TreePath: s.decodeTree.Load()}
}

// InFlight reports how many requests are currently inside the middleware
// chain.
func (s *Stats) InFlight() int64 { return s.inFlight.Load() }

// exit decrements the in-flight gauge and, on the transition to zero,
// wakes every WaitIdle waiter.
func (s *Stats) exit() {
	if s.inFlight.Add(-1) != 0 {
		return
	}
	s.idleMu.Lock()
	// Re-check under the lock: a request admitted after the decrement may
	// have raised the gauge again, in which case its own exit signals.
	if s.idleCh != nil && s.inFlight.Load() == 0 {
		close(s.idleCh)
		s.idleCh = nil
	}
	s.idleMu.Unlock()
}

// WaitIdle blocks until no requests are in flight or ctx expires. A
// collector that is already idle — in particular one whose middleware was
// never installed, so the gauge never moves — returns immediately; there
// is no polling, the waiter parks on a channel closed by the request that
// takes the gauge to zero.
func (s *Stats) WaitIdle(ctx context.Context) error {
	for {
		s.idleMu.Lock()
		if s.inFlight.Load() == 0 {
			s.idleMu.Unlock()
			return nil
		}
		if s.idleCh == nil {
			s.idleCh = make(chan struct{})
		}
		ch := s.idleCh
		s.idleMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// RetryStats is one registered retry policy's counters.
type RetryStats struct {
	Name    string `json:"name"`
	Retries uint64 `json:"retries"`
}

// ResilienceStats is the degradation section of the health document.
type ResilienceStats struct {
	// InFlight is the live request gauge.
	InFlight int64 `json:"inFlight"`
	// Timeouts counts requests answered with the Timeout fault.
	Timeouts uint64 `json:"timeouts"`
	// Shed counts requests rejected ServerBusy at capacity.
	Shed uint64 `json:"shed"`
	// Drained counts requests rejected while the server was draining.
	Drained uint64 `json:"drained"`
	// Breakers reports every registered client-side circuit.
	Breakers []resilience.BreakerStats `json:"breakers,omitempty"`
	// Retries reports every registered retry policy's granted retries.
	Retries []RetryStats `json:"retries,omitempty"`
}

// ResilienceSnapshot reports the degradation counters and every
// registered breaker and retry policy (weakly consistent).
func (s *Stats) ResilienceSnapshot() ResilienceStats {
	out := ResilienceStats{
		InFlight: s.inFlight.Load(),
		Timeouts: s.timeouts.Load(),
		Shed:     s.shed.Load(),
		Drained:  s.drained.Load(),
	}
	s.resilMu.Lock()
	breakers := s.breakers
	retries := s.retries
	s.resilMu.Unlock()
	for _, nb := range breakers {
		for _, bs := range nb.set.Snapshot() {
			bs.Name = nb.name + ":" + bs.Name
			out.Breakers = append(out.Breakers, bs)
		}
	}
	for _, nr := range retries {
		out.Retries = append(out.Retries, RetryStats{Name: nr.name, Retries: nr.policy.Retries()})
	}
	return out
}

// Flush writes a final one-line summary of the collector to l — the last
// act of a graceful drain, so the numbers survive in the logs after the
// process exits.
func (s *Stats) Flush(l *log.Logger) {
	if l == nil {
		l = log.Default()
	}
	var count, errs uint64
	s.ops.Range(func(_, v any) bool {
		c := v.(*opCounters)
		count += c.count.Load()
		errs += c.errors.Load()
		return true
	})
	d := s.DecodeSnapshot()
	l.Printf("rpc stats flush: requests=%d errors=%d timeouts=%d shed=%d drained=%d decodeFast=%d decodeTree=%d uptime=%s",
		count, errs, s.timeouts.Load(), s.shed.Load(), s.drained.Load(),
		d.FastPath, d.TreePath, time.Since(s.start).Round(time.Millisecond))
}

// ServeHTTP serves the health document: status, uptime, and per-operation
// counters, deterministically ordered.
func (s *Stats) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type opLine struct {
		Operation string `json:"operation"`
		OpStats
	}
	counters := s.CounterSnapshot()
	if len(counters) == 0 {
		counters = nil
	}
	doc := struct {
		Status     string            `json:"status"`
		UptimeSecs float64           `json:"uptimeSeconds"`
		Decode     DecodeStats       `json:"decode"`
		Resilience ResilienceStats   `json:"resilience"`
		Caches     []CacheStats      `json:"caches,omitempty"`
		Counters   map[string]uint64 `json:"counters,omitempty"`
		Operations []opLine          `json:"operations"`
	}{Status: "ok", UptimeSecs: time.Since(s.start).Seconds(), Decode: s.DecodeSnapshot(),
		Resilience: s.ResilienceSnapshot(), Caches: s.CacheSnapshot(), Counters: counters}
	for _, k := range keys {
		doc.Operations = append(doc.Operations, opLine{Operation: k, OpStats: snap[k]})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
