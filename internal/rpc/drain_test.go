package rpc

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

// gateDef is a service whose one operation blocks until its gate closes,
// letting drain tests hold a request in flight deterministically.
func gateDef(gate chan struct{}, entered chan struct{}) *Def {
	return &Def{
		Name: "Gate", NS: "urn:test:gate",
		Ops: []Op{{
			Name: "wait",
			Out:  []wsdl.Param{Str("done")},
			Handle: func(_ *core.Context, _ Args) ([]interface{}, error) {
				entered <- struct{}{}
				<-gate
				return Ret("ok"), nil
			},
		}},
	}
}

// TestShutdownSignalsDrain holds a request in flight and verifies Shutdown
// blocks on the drain signal until the handler finishes — and then returns
// promptly, without the old 2 ms poll loop's final sleep.
func TestShutdownSignalsDrain(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	srv := NewServer("drain", "loopback://drain")
	srv.Provider("").MustRegister(gateDef(gate, entered).MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://drain/Gate", gateDef(gate, entered).Interface())

	callDone := make(chan error, 1)
	go func() {
		_, err := cl.Call("wait")
		callDone <- err
	}()
	<-entered // the request is inside the handler: in-flight gauge is 1

	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(context.Background()) }()

	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request finished")
	}
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call failed: %v", err)
	}
}

// TestShutdownWithoutStatsTraffic verifies drain terminates when the Stats
// middleware never ran: an idle gauge means an immediately closed drain,
// not a wait on a signal nobody will send.
func TestShutdownWithoutStatsTraffic(t *testing.T) {
	srv := NewServer("idle", "loopback://idle")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown of idle server: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("idle Shutdown took %s, want immediate return", d)
	}
}

// TestWaitIdleContextExpiry verifies an expired drain budget abandons the
// wait with the context error while a request is still in flight.
func TestWaitIdleContextExpiry(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	srv := NewServer("drain-expiry", "loopback://drain-expiry")
	srv.Provider("").MustRegister(gateDef(gate, entered).MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://drain-expiry/Gate", gateDef(gate, entered).Interface())

	callDone := make(chan struct{})
	go func() {
		_, _ = cl.Call("wait")
		close(callDone)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Stats().WaitIdle(ctx); err != context.DeadlineExceeded {
		t.Fatalf("WaitIdle under load = %v, want context.DeadlineExceeded", err)
	}
	close(gate)
	<-callDone
	if err := srv.Stats().WaitIdle(context.Background()); err != nil {
		t.Fatalf("WaitIdle after drain: %v", err)
	}
}

// cacheProbeDef pairs a cacheable read with a write so the flush tests can
// populate a response cache through the normal middleware path.
func cacheProbeDef() *Def {
	return &Def{
		Name: "CacheProbe", NS: "urn:test:cacheprobe",
		Ops: []Op{
			{
				Name: "getValue",
				In:   []wsdl.Param{Str("key")},
				Out:  []wsdl.Param{Str("value")},
				Handle: func(_ *core.Context, in Args) ([]interface{}, error) {
					return Ret("v:" + in.Str("key")), nil
				},
			},
		},
	}
}

// TestFlushControlOp pins the __flush endpoint's contract: token-gated,
// POST-only, namespace-scoped, with the empty namespace flushing every
// registered cache.
func TestFlushControlOp(t *testing.T) {
	srv := NewServer("flush", "http://flush.local")
	cacheA := NewResponseCache(time.Minute, 64)
	cacheB := NewResponseCache(time.Minute, 64)
	srv.Provider("/a", cacheA.Middleware(OpPrefixes("get"))).MustRegister(cacheProbeDef().MustBuild())
	srv.Provider("/b", cacheB.Middleware(OpPrefixes("get"))).MustRegister(cacheProbeDef().MustBuild())
	srv.RegisterFlushCache("urn:test:cacheprobe-a", cacheA)
	srv.RegisterFlushCache("urn:test:cacheprobe-b", cacheB)
	srv.EnableCacheFlush("sekrit")

	warm := func(prefix string) {
		t.Helper()
		cl := core.NewClient(srv.Transport(), "http://flush.local"+prefix+"/CacheProbe", cacheProbeDef().Interface())
		if _, err := cl.Call("getValue", soap.Str("key", "k")); err != nil {
			t.Fatalf("warm %s: %v", prefix, err)
		}
	}
	entries := func(c *ResponseCache) int {
		_, _, n := c.Stats()
		return n
	}
	warm("/a")
	warm("/b")
	if entries(cacheA) != 1 || entries(cacheB) != 1 {
		t.Fatalf("warmed entries = %d/%d, want 1/1", entries(cacheA), entries(cacheB))
	}

	flush := func(ns, token, method string) int {
		t.Helper()
		url := "http://flush.local" + FlushPath
		if ns != "" {
			url += "?ns=" + ns
		}
		req := httptest.NewRequest(method, url, strings.NewReader(""))
		if token != "" {
			req.Header.Set(FlushTokenHeader, token)
		}
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		return rec.Code
	}

	if code := flush("urn:test:cacheprobe-a", "sekrit", http.MethodGet); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET flush: HTTP %d, want 405", code)
	}
	if code := flush("urn:test:cacheprobe-a", "wrong", http.MethodPost); code != http.StatusForbidden {
		t.Fatalf("bad-token flush: HTTP %d, want 403", code)
	}
	if code := flush("urn:test:cacheprobe-a", "", http.MethodPost); code != http.StatusForbidden {
		t.Fatalf("no-token flush: HTTP %d, want 403", code)
	}
	if entries(cacheA) != 1 || entries(cacheB) != 1 {
		t.Fatal("rejected flushes must not drop entries")
	}

	if code := flush("urn:test:cacheprobe-a", "sekrit", http.MethodPost); code != http.StatusOK {
		t.Fatalf("scoped flush: HTTP %d, want 200", code)
	}
	if entries(cacheA) != 0 || entries(cacheB) != 1 {
		t.Fatalf("scoped flush entries = %d/%d, want 0/1", entries(cacheA), entries(cacheB))
	}

	warm("/a")
	if code := flush("", "sekrit", http.MethodPost); code != http.StatusOK {
		t.Fatalf("global flush: HTTP %d, want 200", code)
	}
	if entries(cacheA) != 0 || entries(cacheB) != 0 {
		t.Fatalf("global flush entries = %d/%d, want 0/0", entries(cacheA), entries(cacheB))
	}
	if got := srv.Flushes(); got != 2 {
		t.Fatalf("Flushes() = %d, want 2", got)
	}
}
