package rpc

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

// resilienceDef is a minimal service for exercising the server-side
// resilience middleware: a fast echo, a handler that blocks until its
// context is cancelled, and a gate-controlled handler for concurrency
// tests.
func resilienceDef(gate chan struct{}) *Def {
	return &Def{
		Name: "ResilienceProbe",
		NS:   "urn:test:resilience",
		Ops: []Op{
			{
				Name: "echo", In: []wsdl.Param{Str("s")}, Out: []wsdl.Param{Str("s")},
				Idempotent: true,
				Handle: func(_ *core.Context, in Args) ([]interface{}, error) {
					return Ret(in.Str("s")), nil
				},
			},
			{
				Name: "hang", Out: []wsdl.Param{Str("never")},
				Handle: func(cx *core.Context, _ Args) ([]interface{}, error) {
					<-cx.Context().Done()
					return nil, cx.Context().Err()
				},
			},
			{
				Name: "block", Out: []wsdl.Param{Str("ok")},
				Handle: func(_ *core.Context, _ Args) ([]interface{}, error) {
					if gate != nil {
						<-gate
					}
					return Ret("ok"), nil
				},
			},
		},
	}
}

func TestDeadlineMiddleware(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := NewServer("deadline", "loopback://deadline")
	srv.Provider("", Deadline(15*time.Millisecond)).MustRegister(resilienceDef(nil).MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://deadline/ResilienceProbe", resilienceDef(nil).Interface())

	// Fast requests pass untouched.
	resp, err := cl.Call("echo", soap.Str("s", "hi"))
	if err != nil || resp.ReturnText("s") != "hi" {
		t.Fatalf("echo under deadline: %v %v", resp, err)
	}

	// A hung handler is answered with the deterministic Timeout fault.
	start := time.Now()
	_, err = cl.Call("hang")
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeTimeout {
		t.Fatalf("hang: got %v, want Timeout portal error", err)
	}
	if want := "operation hang exceeded its 15ms deadline"; pe.Message != want {
		t.Errorf("fault text %q, want %q (the golden suite pins this shape)", pe.Message, want)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("timeout answered after %v, budget was 15ms", elapsed)
	}
	if srv.Stats().ResilienceSnapshot().Timeouts == 0 {
		t.Error("timeout not counted in stats")
	}

	// The abandoned handler goroutine exits once its context is cancelled.
	waitGoroutinesInternal(t, baseline)
}

// TestDeadlineTighterCallerContext verifies the middleware composes with a
// caller deadline: whichever budget is tighter wins.
func TestDeadlineTighterCallerContext(t *testing.T) {
	srv := NewServer("deadline2", "loopback://deadline2")
	srv.Provider("", Deadline(10*time.Second)).MustRegister(resilienceDef(nil).MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://deadline2/ResilienceProbe", resilienceDef(nil).Interface())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.CallCtx(ctx, "hang")
	if err == nil {
		t.Fatal("hang returned without error under 10ms caller deadline")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("caller deadline honoured after %v, want ~10ms", elapsed)
	}
}

func waitGoroutinesInternal(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestLoadShedRetryAfterHeader drives load shedding over real HTTP and
// checks the ServerBusy fault arrives with the Retry-After header the
// HTTP binding promises.
func TestLoadShedRetryAfterHeader(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer("shed", "placeholder")
	srv.Provider("", LoadShed(1, 0)).MustRegister(resilienceDef(gate).MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	post := func(method string) (*http.Response, string) {
		call := &soap.Call{ServiceNS: "urn:test:resilience", Method: method}
		var buf bytes.Buffer
		call.WireEnvelope().AppendTo(&buf)
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/ResilienceProbe", &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", soap.ContentType)
		req.Header.Set("SOAPAction", `"urn:test:resilience#`+method+`"`)
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Fill the single execution slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post("block")
	}()
	// Wait until the blocked request is inside the handler.
	for i := 0; srv.Stats().InFlight() == 0; i++ {
		if i > 1000 {
			t.Fatal("blocked request never entered the chain")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is zero-length: this request must shed immediately.
	resp, body := post("echo")
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(body, soap.ErrCodeServerBusy) {
		t.Errorf("shed response body lacks ServerBusy code: %s", body)
	}
	if !strings.Contains(body, "server at capacity (1 executing, 0 queued)") {
		t.Errorf("shed fault text not deterministic: %s", body)
	}

	close(gate)
	wg.Wait()
	if srv.Stats().ResilienceSnapshot().Shed == 0 {
		t.Error("shed not counted in stats")
	}
}

// TestLoadShedQueueWait verifies a queued request proceeds when the slot
// frees, and is answered with the Timeout fault if its caller gives up
// while queued.
func TestLoadShedQueueWait(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer("queue", "loopback://queue")
	srv.Provider("", LoadShed(1, 4)).MustRegister(resilienceDef(gate).MustBuild())
	cl := core.NewClient(srv.Transport(), "loopback://queue/ResilienceProbe", resilienceDef(nil).Interface())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cl.Call("block"); err != nil {
			t.Errorf("blocked call: %v", err)
		}
	}()
	for i := 0; srv.Stats().InFlight() == 0; i++ {
		if i > 1000 {
			t.Fatal("blocked request never entered the chain")
		}
		time.Sleep(time.Millisecond)
	}

	// Queued caller with a short deadline gets the queued-timeout fault.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := cl.CallCtx(ctx, "echo", soap.Str("s", "queued"))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeTimeout {
		t.Fatalf("queued call under deadline: got %v, want Timeout portal error", err)
	}

	// Free the slot; a queued caller with headroom completes.
	done := make(chan error, 1)
	go func() {
		_, err := cl.Call("echo", soap.Str("s", "after"))
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	close(gate)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("queued call after release: %v", err)
	}
}

// TestFaultInjectorDeterminism: the same seed must produce the same fault
// schedule — the property every chaos run's reproducibility rests on.
func TestFaultInjectorDeterminism(t *testing.T) {
	mk := func() *FaultInjector {
		return &FaultInjector{Seed: 42, ErrorRate: 0.3, LatencyRate: 0.3, MaxLatency: time.Millisecond}
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		ad, af := a.draw()
		bd, bf := b.draw()
		if ad != bd || af != bf {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, ad, af, bd, bf)
		}
	}
	da, ea := a.Injected()
	db, eb := b.Injected()
	_ = da
	_ = db
	if ea != eb {
		t.Fatalf("injected error counts diverged: %d vs %d", ea, eb)
	}
}

// TestHealthzResilienceSection: the /healthz document carries the
// degradation counters and registered breaker/retry state.
func TestHealthzResilienceSection(t *testing.T) {
	srv := NewServer("healthz", "placeholder")
	srv.Provider("", Deadline(5*time.Millisecond)).MustRegister(resilienceDef(nil).MustBuild())
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	srv.SetBaseURL(hs.URL)

	cl := core.NewClient(srv.Transport(), hs.URL+"/ResilienceProbe", resilienceDef(nil).Interface())
	if _, err := cl.Call("hang"); err == nil {
		t.Fatal("hang should time out")
	}

	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	doc := string(body)
	for _, want := range []string{`"resilience"`, `"inFlight"`, `"timeouts": 1`} {
		if !strings.Contains(doc, want) {
			t.Errorf("healthz missing %s:\n%s", want, doc)
		}
	}
}

// TestListenAndServeGracefulSIGTERM boots a real listener and delivers a
// real SIGTERM: the loop must drain and return nil — the contract every
// portal binary's main depends on.
func TestListenAndServeGracefulSIGTERM(t *testing.T) {
	srv := NewServer("graceful", "http://127.0.0.1:0")
	srv.Provider("").MustRegister(resilienceDef(nil).MustBuild())

	done := make(chan error, 1)
	go func() {
		done <- srv.ListenAndServeGraceful("127.0.0.1:0", 2*time.Second)
	}()
	// Let the listener install itself before signalling.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful loop returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graceful loop did not return after SIGTERM")
	}
	if !srv.Draining() {
		t.Error("server not draining after signal shutdown")
	}
}
