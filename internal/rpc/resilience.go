package rpc

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/soap"
)

// TimeoutError builds the portal-standard Timeout fault the Deadline
// middleware relays when it gives up on a handler. The text is
// deterministic in (operation, budget) so the wire shape can be pinned by
// the golden conformance suite.
func TimeoutError(service, operation string, d time.Duration) error {
	return soap.NewPortalError(service, soap.ErrCodeTimeout,
		"operation %s exceeded its %s deadline", operation, d)
}

// Deadline bounds every request below it to budget d: the inner chain runs
// on its own goroutine with a context that expires after d (or earlier, if
// the request context already carries a tighter deadline), and when the
// budget runs out the request is answered immediately with the
// portal-standard Timeout fault.
//
// The expired handler is abandoned, not interrupted — Go cannot kill a
// goroutine — so it keeps running until it observes its cancelled
// Context.Ctx. Abandonment is made safe against the kernel's pooled
// request storage: the inner chain runs on a detached copy of the request
// context (no shared mutable state with outer middleware), and the
// dispatcher is told (Context.Abandon) to leak the request's pooled
// buffers to the garbage collector instead of recycling them under the
// runaway goroutine.
func Deadline(d time.Duration) core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			cctx, cancel := context.WithTimeout(ctx.Context(), d)
			defer cancel()
			detached := ctx.Detach(cctx)
			res := deadlineResults.Get().(chan deadlineResult)
			deadlineRun(deadlineJob{next: next, cx: detached, args: args, res: res})
			select {
			case r := <-res:
				// The worker has sent and moved on: the channel is drained
				// and exclusively ours again, so it can be recycled. On the
				// timeout path below it cannot be — the abandoned worker
				// still holds it and will send into its buffer slot later.
				deadlineResults.Put(res)
				ctx.Adopt(detached)
				return r.vals, r.err
			case <-cctx.Done():
				ctx.Abandon()
				return nil, TimeoutError(ctx.ServiceNS, ctx.Operation, d)
			}
		}
	}
}

// deadlineResult carries a handler's return across the watchdog boundary.
type deadlineResult struct {
	vals []soap.Value
	err  error
}

// deadlineJob is one admitted request handed to a watchdog worker.
type deadlineJob struct {
	next core.HandlerFunc
	cx   *core.Context
	args soap.Args
	res  chan deadlineResult
}

var deadlineResults = sync.Pool{New: func() interface{} {
	return make(chan deadlineResult, 1)
}}

// Watchdog workers are pooled so the Deadline happy path pays a channel
// handoff instead of a goroutine spawn per request. A worker that finishes
// an abandoned request simply rejoins the pool; idle workers exit after
// deadlineWorkerIdle so the pool never outlives its load (the chaos
// suite's goroutine-leak checks depend on this).
const deadlineWorkerIdle = 100 * time.Millisecond

var deadlineWorkers = make(chan chan deadlineJob, 128)

// deadlineRun hands the job to an idle worker, or spawns a fresh one. The
// handoff send is non-blocking: a pooled inbox whose worker has idled out
// (or is still re-arming its timer) is simply discarded and the job runs
// on a new worker, so no request can be parked on a dead channel.
func deadlineRun(j deadlineJob) {
	select {
	case jobs := <-deadlineWorkers:
		select {
		case jobs <- j:
			return
		default:
		}
	default:
	}
	jobs := make(chan deadlineJob)
	go deadlineWorkerLoop(j, jobs)
}

func deadlineWorkerLoop(j deadlineJob, jobs chan deadlineJob) {
	idle := time.NewTimer(deadlineWorkerIdle)
	defer idle.Stop()
	for {
		vals, err := j.next(j.cx, j.args)
		j.res <- deadlineResult{vals, err} // buffered: never blocks, even abandoned
		select {
		case deadlineWorkers <- jobs:
		default:
			return // pool full: let this worker retire
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(deadlineWorkerIdle)
		select {
		case j = <-jobs:
		case <-idle.C:
			return
		}
	}
}

// ServerBusyError builds the portal-standard ServerBusy fault load
// shedding rejects with: a *soap.Fault carrying the PortalError detail and
// retry advice (relayed as a Retry-After header on the HTTP binding). The
// text is deterministic in the capacity figures so the wire shape can be
// pinned by the golden conformance suite. ServerBusy is, by convention, a
// pre-execution rejection: clients may retry it even for non-idempotent
// operations.
func ServerBusyError(service string, limit, queue int, retryAfter time.Duration) error {
	pe := soap.NewPortalError(service, soap.ErrCodeServerBusy,
		"server at capacity (%d executing, %d queued)", limit, queue)
	f := pe.Fault()
	f.RetryAfter = retryAfter
	return f
}

// LoadShedder bounds concurrent execution like ConcurrencyLimit, but with
// a bounded wait queue: when limit requests are executing and queue more
// are waiting, further requests are rejected immediately with a ServerBusy
// fault instead of queueing unboundedly — under overload it is better to
// tell callers to back off than to let latency grow without bound.
type LoadShedder struct {
	limit, queue int
	retryAfter   time.Duration
	sem          chan struct{}
	waiting      atomic.Int64
	shed         atomic.Uint64
}

// NewLoadShedder creates a shedder admitting limit concurrent requests
// with at most queue waiters; rejections advise retrying after retryAfter.
func NewLoadShedder(limit, queue int, retryAfter time.Duration) *LoadShedder {
	if limit <= 0 {
		limit = 1
	}
	if queue < 0 {
		queue = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &LoadShedder{limit: limit, queue: queue, retryAfter: retryAfter, sem: make(chan struct{}, limit)}
}

// LoadShed is the one-line wiring: admit limit concurrent requests, queue
// up to queue more, shed the rest with one-second retry advice.
func LoadShed(limit, queue int) core.Middleware {
	return NewLoadShedder(limit, queue, time.Second).Middleware()
}

// Shed reports how many requests were rejected at capacity.
func (l *LoadShedder) Shed() uint64 { return l.shed.Load() }

// Middleware returns the shedding middleware.
func (l *LoadShedder) Middleware() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			select {
			case l.sem <- struct{}{}:
			default:
				// At the execution limit: join the bounded queue or shed.
				if int(l.waiting.Add(1)) > l.queue {
					l.waiting.Add(-1)
					l.shed.Add(1)
					return nil, ServerBusyError(ctx.ServiceNS, l.limit, l.queue, l.retryAfter)
				}
				select {
				case l.sem <- struct{}{}:
					l.waiting.Add(-1)
				case <-ctx.Context().Done():
					l.waiting.Add(-1)
					return nil, soap.NewPortalError(ctx.ServiceNS, soap.ErrCodeTimeout,
						"operation %s cancelled while queued", ctx.Operation)
				}
			}
			defer func() { <-l.sem }()
			return next(ctx, args)
		}
	}
}

// FaultInjector is the server-side half of the chaos harness: a middleware
// that, with seeded determinism, delays requests and fails them before the
// handler runs. Injected failures are pre-execution by construction, so
// they honour the same retry semantics as real ServerBusy/Unavailable
// rejections — which is exactly what the chaos suite exploits to prove
// retries never duplicate writes.
type FaultInjector struct {
	// Seed makes the fault schedule reproducible; 0 seeds from the clock.
	Seed int64
	// ErrorRate is the probability a request fails before its handler.
	ErrorRate float64
	// LatencyRate is the probability of an injected delay, uniform in
	// (0, MaxLatency].
	LatencyRate float64
	// MaxLatency bounds injected delays; default 10ms when a delay fires.
	MaxLatency time.Duration
	// Code is the portal error code of injected failures;
	// soap.ErrCodeUnavailable when empty.
	Code string

	mu  sync.Mutex
	rng *rand.Rand

	injectedErrors atomic.Uint64
	injectedDelays atomic.Uint64
}

// draw pre-decides one request's fate under the injector's lock.
func (f *FaultInjector) draw() (delay time.Duration, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		seed := f.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		f.rng = rand.New(rand.NewSource(seed))
	}
	if f.LatencyRate > 0 && f.rng.Float64() < f.LatencyRate {
		max := f.MaxLatency
		if max <= 0 {
			max = 10 * time.Millisecond
		}
		delay = time.Duration(f.rng.Int63n(int64(max))) + 1
	}
	fail = f.ErrorRate > 0 && f.rng.Float64() < f.ErrorRate
	return delay, fail
}

// Injected reports how many delays and errors were injected.
func (f *FaultInjector) Injected() (delays, errors uint64) {
	return f.injectedDelays.Load(), f.injectedErrors.Load()
}

// Middleware returns the injecting middleware.
func (f *FaultInjector) Middleware() core.Middleware {
	return func(next core.HandlerFunc) core.HandlerFunc {
		return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
			delay, fail := f.draw()
			if delay > 0 {
				f.injectedDelays.Add(1)
				if err := resilience.Sleep(ctx.Context(), delay); err != nil {
					return nil, TimeoutError(ctx.ServiceNS, ctx.Operation, delay)
				}
			}
			if fail {
				f.injectedErrors.Add(1)
				code := f.Code
				if code == "" {
					code = soap.ErrCodeUnavailable
				}
				return nil, soap.NewPortalError(ctx.ServiceNS, code,
					"injected fault before %s", ctx.Operation)
			}
			return next(ctx, args)
		}
	}
}
