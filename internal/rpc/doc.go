// Package rpc is the declarative service kernel every portal service is
// built on. It realises the paper's common-architecture discipline — one
// SOAP/WSDL contract mechanism shared by all services — as three layers:
//
// # Descriptor layer
//
// A service is a Def: a name, namespace, and a table of Op descriptors,
// each declaring the operation's typed parameters and returns
// (wsdl.Param) next to its implementation. The kernel derives the
// wsdl.Interface from the same table, registers every handler, and owns
// the codec: wire parameters are decoded and validated (through the
// databind XSD bridge) into typed Args before the handler runs, and the
// handler's ordered return values are encoded back per the Out table.
// Service code never touches soap.Value, and contract and implementation
// cannot drift.
//
//	def := &rpc.Def{
//	    Name: "Echo", NS: "urn:echo",
//	    Ops: []rpc.Op{{
//	        Name: "say",
//	        In:   []wsdl.Param{rpc.Str("msg")},
//	        Out:  []wsdl.Param{rpc.Str("echo")},
//	        Handle: func(c *core.Context, in rpc.Args) ([]interface{}, error) {
//	            return rpc.Ret(in.Str("msg")), nil
//	        },
//	    }},
//	}
//	svc := def.MustBuild() // a deployable *core.Service
//
// # Middleware layer
//
// Cross-cutting behaviour composes as core.Middleware — func(next
// core.HandlerFunc) core.HandlerFunc — chained provider-wide or
// per-service via Use. The kernel ships RequireAssertion (GSS/SAML auth
// enforcement), Logging, Recover (panic to SOAP fault), ConcurrencyLimit,
// and Stats (request counts and latency, served at /healthz).
//
// # Hosting layer
//
// Server assembles the HTTP surface: providers mounted under path
// prefixes (with WSDL GET handling), the WS-Inspection document at
// /inspection.wsil, /healthz, and pass-through handlers for UI pages.
// Recovery and stats middleware are attached to every provider
// automatically. Server.Transport() gives an in-process transport over
// the same dispatch path for examples and tests.
//
//	srv := rpc.NewServer("portal", "http://localhost:8080")
//	ssp := srv.Provider("/ssp", rpc.Logging(nil))
//	ssp.MustRegister(def.MustBuild())
//	log.Fatal(srv.ListenAndServe(":8080"))
//
// Registering a new service is therefore: declare a Def table, build it,
// and register it on a mounted provider — discovery (WSDL, WSIL, UDDI
// publication) and operations concerns are inherited from the kernel.
//
// # Request decoding — the streaming fast path
//
// Build compiles, besides the tree-path codecs, a per-Op streaming codec
// for every operation whose In table is within the streaming subset
// (string, int, boolean, and strings parameters; an xml-typed parameter
// makes the operation tree-only). The compiled codecs implement
// core.StreamDecoder and are installed as Service.Stream, so the
// provider's raw dispatch path offers every request body to them first:
// a soap.BodyReader walks the envelope tokens and the codec decodes each
// parameter straight into its typed Args slot — no element tree, no
// arena.
//
// The fallback contract: the streaming path may reject a request at any
// depth — a Header entry, a literal-XML parameter, a soapenc:Array
// nested inside another, a fault body, an unknown operation, malformed
// bytes — and rejection is always transparent. The request re-runs
// through the pooled tree parse and the tree codecs, which remain the
// semantic authority (exact fault texts included). Handlers cannot tell
// the paths apart: both deliver the same typed Args, the same
// core.Context shape (the fast path sets Context.Decoded), and encode
// responses identically. Equivalence is enforced differentially by
// FuzzStreamVsTreeDispatch, which requires byte-identical HTTP responses
// from a fast-path server and a tree-only server for arbitrary bodies;
// the fast-path/tree-path split is observable at /healthz under
// "decode".
//
// # Resilience
//
// The kernel degrades deterministically instead of hanging or collapsing
// under failure. Server side, two middlewares bound every request:
// Deadline(d) runs the inner chain on a pooled watchdog goroutine and
// answers with the portal-standard Timeout fault when the budget (or a
// tighter caller deadline — contexts propagate through both transports)
// expires, abandoning the runaway handler safely; LoadShed(limit, queue)
// admits limit concurrent requests, queues a bounded overflow, and
// rejects the rest immediately with a ServerBusy fault carrying
// Retry-After advice. Client side, core.Client gains a RetryPolicy
// (pre-execution rejections always retry; ambiguous failures —
// timeouts, transport errors — retry only ops flagged Idempotent in the
// Def table) and a per-endpoint circuit BreakerSet that fails fast while
// an endpoint is down and probes it half-open. Server.Shutdown drains
// in-flight requests before returning (ListenAndServeGraceful wires this
// to SIGTERM/SIGINT for the binaries); requests arriving mid-drain get
// an Unavailable fault.
//
//	srv := rpc.NewServer("portal", "http://localhost:8080")
//	ssp := srv.Provider("/ssp", rpc.Deadline(2*time.Second), rpc.LoadShed(64, 128))
//	ssp.MustRegister(def.MustBuild())
//
//	cl := core.NewClient(tr, endpoint, def.Interface())
//	cl.Retry = &resilience.RetryPolicy{MaxAttempts: 3,
//	    Backoff: resilience.Backoff{Base: 50 * time.Millisecond, Max: time.Second}}
//	cl.Breakers = &resilience.BreakerSet{}
//	srv.Stats().RegisterBreakers("downstream", cl.Breakers) // state at /healthz
//
// Every degradation is a typed fault with a deterministic text (pinned by
// the golden suite: timeoutfault, serverbusyfault), every counter —
// timeouts, shed, drained, retries, breaker state transitions — is
// surfaced at /healthz under "resilience", and the whole layer is
// exercised by the seeded fault-injection chaos suite in chaos_test.go
// (FaultInjector middleware + soap.ChaosTransport), which asserts no
// goroutine leaks, no torn store state, and that retries never duplicate
// non-idempotent writes.
//
// # Response encoding
//
// Handler return values are encoded by the kernel through the streaming
// xmlutil.Writer: scalar, boolean, numeric, and string-array returns are
// written straight to the wire buffer and never materialise an element
// tree. Handlers only still build trees for "xml"-typed returns — an
// *xmlutil.Element payload (job results, registry containers, descriptors)
// constructed with the xmlutil builders and bridged onto the wire by
// Writer.Element. That is the intended division: build a tree when the
// payload is a document the caller will navigate, return plain values
// otherwise and let the kernel stream them. The wire bytes of both paths
// are pinned by the golden conformance suite in golden_test.go
// (regenerate with -update after an intentional format change).
package rpc
