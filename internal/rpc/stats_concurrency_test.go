package rpc

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/soap"
)

// TestStatsConcurrentRecording hammers one Stats collector from many
// goroutines through its middleware, polling snapshots concurrently. Run
// under -race this pins the lock-free recording (atomic counters, CAS
// max, sync.Map op registry); the functional assertion is that not one
// request is lost: counts, errors, and the decode split all balance
// exactly once the workers quiesce.
func TestStatsConcurrentRecording(t *testing.T) {
	s := NewStats()
	boom := errors.New("boom")
	handler := func(ctx *core.Context, _ soap.Args) ([]soap.Value, error) {
		if ctx.Operation == "fail" {
			return nil, boom
		}
		return []soap.Value{soap.Str("out", "x")}, nil
	}
	h := s.Middleware()(handler)

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx := &core.Context{ServiceNS: "urn:test:stats", Operation: "work"}
				if i%5 == 0 {
					ctx.Operation = "fail"
				}
				if i%3 == 0 {
					// Mark as fast-path: ctx.Decoded is the marker the
					// middleware keys the decode split on.
					ctx.Decoded = struct{}{}
				}
				_, _ = h(ctx, nil)
				if i%50 == g {
					// Concurrent snapshots must not disturb recording.
					s.Snapshot()
					s.DecodeSnapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var failPer, fastPer int
	for i := 0; i < iters; i++ {
		if i%5 == 0 {
			failPer++
		}
		if i%3 == 0 {
			fastPer++
		}
	}
	snap := s.Snapshot()
	work := snap["urn:test:stats#work"]
	fail := snap["urn:test:stats#fail"]
	if total := work.Count + fail.Count; total != workers*iters {
		t.Fatalf("recorded %d requests, want %d", total, workers*iters)
	}
	if want := uint64(workers * failPer); fail.Count != want || fail.Errors != want {
		t.Fatalf("fail op = %+v, want count=errors=%d", fail, want)
	}
	if work.Errors != 0 {
		t.Fatalf("work op recorded %d errors, want 0", work.Errors)
	}
	dec := s.DecodeSnapshot()
	if dec.FastPath != uint64(workers*fastPer) {
		t.Fatalf("fastPath = %d, want %d", dec.FastPath, workers*fastPer)
	}
	if dec.FastPath+dec.TreePath != workers*iters {
		t.Fatalf("decode split %d+%d != %d", dec.FastPath, dec.TreePath, workers*iters)
	}
	for op, st := range snap {
		if st.MaxNS > st.TotalNS {
			t.Fatalf("%s: MaxNS %d exceeds TotalNS %d", op, st.MaxNS, st.TotalNS)
		}
	}
}
