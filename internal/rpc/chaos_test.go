package rpc_test

// Chaos suite: drives a real portal service (the UDDI registry, whose
// sharded store and non-idempotent saveBusiness make it the sharpest
// probe) through the full resilience stack — Deadline, LoadShed and
// FaultInjector on the server, retry + circuit breaking on the client,
// and a seeded ChaosTransport tearing up the wire in between — and then
// asserts the layer's four invariants:
//
//  1. no goroutine leaks (abandoned handlers and queued waiters all exit),
//  2. no torn state in the sharded registry (entities stored == handler
//     executions),
//  3. every failure surfaces as a typed error the caller can classify,
//  4. retries never duplicate non-idempotent writes.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/uddi"
)

// execCounter counts handler executions per operation. Installed as the
// innermost service middleware (after the fault injector), it increments
// only when a request actually reaches its handler — the ground truth the
// duplicate-write invariant is checked against.
type execCounter struct {
	saves atomic.Uint64
	finds atomic.Uint64
}

func (e *execCounter) mw(next core.HandlerFunc) core.HandlerFunc {
	return func(ctx *core.Context, args soap.Args) ([]soap.Value, error) {
		switch ctx.Operation {
		case "saveBusiness":
			e.saves.Add(1)
		case "findBusiness":
			e.finds.Add(1)
		}
		return next(ctx, args)
	}
}

// waitGoroutines polls until the goroutine count returns to near baseline;
// abandoned deadline handlers and backoff sleepers need a moment to
// observe their cancelled contexts.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// typedFailure reports whether err is one of the failure shapes the
// resilience layer contracts to surface. Torn (truncated) responses are
// the one exception handled by the caller in chaosClassify.
func typedFailure(err error) bool {
	return soap.AsPortalError(err) != nil ||
		soap.AsFault(err) != nil ||
		errors.Is(err, resilience.ErrOpen) ||
		errors.Is(err, soap.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func TestChaosEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := uddi.NewRegistry()
	svc := uddi.NewService(reg)
	inj := &rpc.FaultInjector{Seed: 7, ErrorRate: 0.15, LatencyRate: 0.25, MaxLatency: 2 * time.Millisecond}
	ec := &execCounter{}
	svc.Use(inj.Middleware())
	svc.Use(ec.mw) // innermost: counts only requests that reach the handler

	srv := rpc.NewServer("chaos", "loopback://chaos")
	srv.Provider("", rpc.Deadline(250*time.Millisecond), rpc.LoadShed(8, 16)).MustRegister(svc)

	chaos := &soap.ChaosTransport{
		Inner:        srv.Transport().(soap.RawTransport),
		Seed:         11,
		LatencyRate:  0.2,
		MaxLatency:   2 * time.Millisecond,
		ErrorRate:    0.1,
		DropRate:     0.1,
		TruncateRate: 0.05,
	}
	retry := &resilience.RetryPolicy{
		MaxAttempts: 3,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		Seed:        13,
	}
	cl := core.NewClient(chaos, "loopback://chaos/UDDIRegistry", uddi.Contract())
	cl.Retry = retry
	cl.Breakers = &resilience.BreakerSet{Config: resilience.BreakerConfig{
		FailureThreshold: 10, OpenFor: 5 * time.Millisecond,
	}}
	srv.Stats().RegisterBreakers("uddi", cl.Breakers)
	srv.Stats().RegisterRetry("uddi", retry)

	const workers, perWorker = 8, 30
	var (
		mu        sync.Mutex
		failures  []error
		successes int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				var err error
				if i%2 == 0 {
					_, err = cl.CallCtx(ctx, "findBusiness", soap.Str("name", "chaos"))
				} else {
					_, err = cl.CallCtx(ctx, "saveBusiness",
						soap.Str("name", fmt.Sprintf("chaos-%d-%d", w, i)),
						soap.Str("description", "chaos suite entity"))
				}
				cancel()
				mu.Lock()
				if err != nil {
					failures = append(failures, err)
				} else {
					successes++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if successes == 0 {
		t.Fatal("chaos drowned every call; the suite proves nothing")
	}

	// Invariant 3: every failure is a typed, classifiable error. The only
	// exception is a response torn by injected truncation, which surfaces
	// as an envelope parse error — permitted only when truncations fired.
	_, _, _, truncations := chaos.Injected()
	for _, err := range failures {
		if !typedFailure(err) && truncations == 0 {
			t.Errorf("untyped failure: %v", err)
		}
	}

	// Invariant 2: the sharded registry holds exactly one entity per
	// handler execution — no torn, duplicated, or lost state.
	stored := len(reg.FindBusiness("chaos-"))
	if got := int(ec.saves.Load()); stored != got {
		t.Errorf("sharded store torn: %d entities stored, %d saveBusiness executions", stored, got)
	}

	// Invariant 4: saveBusiness is not idempotent, so no logical call may
	// execute twice. Pre-execution rejections (shed, injected portal
	// faults) are retried but never reached the handler.
	logicalSaves := workers * perWorker / 2
	if got := int(ec.saves.Load()); got > logicalSaves {
		t.Errorf("duplicate writes: %d executions for %d logical saveBusiness calls", got, logicalSaves)
	}

	// The health document should reflect the chaos the stack absorbed.
	rs := srv.Stats().ResilienceSnapshot()
	if rs.InFlight != 0 {
		t.Errorf("in-flight gauge stuck at %d", rs.InFlight)
	}

	// Invariant 1: nothing left running.
	waitGoroutines(t, baseline)
}

// TestChaosRetriesNeverDuplicateWrites is the sharp version of invariant 4:
// with a transport that executes every request but loses half the
// responses, a retrying client must still execute each non-idempotent
// write exactly once, while idempotent reads retry through the losses.
func TestChaosRetriesNeverDuplicateWrites(t *testing.T) {
	reg := uddi.NewRegistry()
	svc := uddi.NewService(reg)
	ec := &execCounter{}
	svc.Use(ec.mw)
	srv := rpc.NewServer("chaos-dup", "loopback://chaos-dup")
	srv.Provider("").MustRegister(svc)

	chaos := &soap.ChaosTransport{
		Inner:    srv.Transport().(soap.RawTransport),
		Seed:     3,
		DropRate: 0.5,
	}
	retry := &resilience.RetryPolicy{
		MaxAttempts: 4,
		Backoff:     resilience.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond},
		Seed:        5,
	}
	cl := core.NewClient(chaos, "loopback://chaos-dup/UDDIRegistry", uddi.Contract())
	cl.Retry = retry

	const saves = 60
	saveFailures := 0
	for i := 0; i < saves; i++ {
		_, err := cl.Call("saveBusiness",
			soap.Str("name", fmt.Sprintf("dup-%d", i)),
			soap.Str("description", "exactly once"))
		if err != nil {
			if !errors.Is(err, soap.ErrInjected) {
				t.Fatalf("save %d: unexpected failure kind: %v", i, err)
			}
			saveFailures++
		}
	}
	if got := int(ec.saves.Load()); got != saves {
		t.Fatalf("saveBusiness executed %d times for %d logical calls (dropped responses must not be retried)", got, saves)
	}
	if stored := len(reg.FindBusiness("dup-")); stored != saves {
		t.Fatalf("registry holds %d entities, want %d", stored, saves)
	}
	if saveFailures == 0 {
		t.Fatal("no responses dropped; DropRate did not exercise the invariant")
	}

	// Idempotent reads ride through the same losses on retries.
	const finds = 40
	findFailures := 0
	for i := 0; i < finds; i++ {
		if _, err := cl.Call("findBusiness", soap.Str("name", "dup-")); err != nil {
			findFailures++
		}
	}
	if got := int(ec.finds.Load()); got <= finds {
		t.Errorf("findBusiness executed %d times for %d calls; retries never fired", got, finds)
	}
	if findFailures >= finds/2 {
		t.Errorf("%d/%d idempotent reads failed despite retries (expected ~6%% at 0.5 drop, 4 attempts)", findFailures, finds)
	}
	if retry.Retries() == 0 {
		t.Error("retry policy recorded no retries")
	}
}

// TestChaosDrainUnderLoad proves graceful drain: mid-burst Shutdown lets
// every admitted request finish, refuses the rest with the Unavailable
// fault, and leaves the in-flight gauge at zero.
func TestChaosDrainUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := uddi.NewRegistry()
	svc := uddi.NewService(reg)
	inj := &rpc.FaultInjector{Seed: 17, LatencyRate: 1, MaxLatency: 3 * time.Millisecond}
	ec := &execCounter{}
	svc.Use(inj.Middleware())
	svc.Use(ec.mw)
	srv := rpc.NewServer("chaos-drain", "loopback://chaos-drain")
	srv.Provider("").MustRegister(svc)

	cl := core.NewClient(srv.Transport(), "loopback://chaos-drain/UDDIRegistry", uddi.Contract())

	const calls = 40
	var (
		wg        sync.WaitGroup
		successes atomic.Uint64
		drained   atomic.Uint64
	)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cl.Call("saveBusiness",
				soap.Str("name", fmt.Sprintf("drain-%d", i)),
				soap.Str("description", "in flight"))
			switch {
			case err == nil:
				successes.Add(1)
			case soap.AsPortalError(err) != nil && soap.AsPortalError(err).Code == soap.ErrCodeUnavailable:
				drained.Add(1)
			default:
				t.Errorf("call %d: unexpected failure during drain: %v", i, err)
			}
		}(i)
	}

	time.Sleep(2 * time.Millisecond) // let a few requests into the chain
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	if !srv.Draining() {
		t.Error("server not marked draining after Shutdown")
	}
	if srv.Stats().InFlight() != 0 {
		t.Errorf("in-flight gauge %d after drain", srv.Stats().InFlight())
	}
	// Admitted requests all finished; refused ones never executed.
	if got := int(successes.Load()); got != int(ec.saves.Load()) {
		t.Errorf("%d successes vs %d executions: drain lost or duplicated work", got, ec.saves.Load())
	}
	if stored := len(reg.FindBusiness("drain-")); stored != int(successes.Load()) {
		t.Errorf("registry holds %d entities, %d calls succeeded", stored, successes.Load())
	}
	if successes.Load()+drained.Load() != calls {
		t.Errorf("accounting hole: %d successes + %d drained != %d calls",
			successes.Load(), drained.Load(), calls)
	}

	// New work after drain is refused with retry advice.
	_, err := cl.Call("findBusiness", soap.Str("name", "drain-"))
	pe := soap.AsPortalError(err)
	if pe == nil || pe.Code != soap.ErrCodeUnavailable {
		t.Errorf("post-drain call: got %v, want Unavailable fault", err)
	}
	if srv.Stats().ResilienceSnapshot().Drained == 0 {
		t.Error("drained counter never incremented")
	}

	waitGoroutines(t, baseline)
}

// flakyTransport fails every round trip at the transport level while down,
// driving the client's circuit breaker.
type flakyTransport struct {
	down  atomic.Bool
	inner soap.Transport
}

func (f *flakyTransport) RoundTrip(endpoint, action string, req *soap.Envelope) (*soap.Envelope, error) {
	if f.down.Load() {
		return nil, errors.New("dial tcp: connection refused")
	}
	return f.inner.RoundTrip(endpoint, action, req)
}

// TestChaosBreakerRecovery walks the circuit through its whole lifecycle
// against a failing-then-healed endpoint: closed → open (fail fast) →
// half-open probe → closed again.
func TestChaosBreakerRecovery(t *testing.T) {
	reg := uddi.NewRegistry()
	srv := rpc.NewServer("chaos-breaker", "loopback://chaos-breaker")
	srv.Provider("").MustRegister(uddi.NewService(reg))

	ft := &flakyTransport{inner: srv.Transport()}
	ft.down.Store(true)
	cl := core.NewClient(ft, "loopback://chaos-breaker/UDDIRegistry", uddi.Contract())
	cl.Breakers = &resilience.BreakerSet{Config: resilience.BreakerConfig{
		FailureThreshold: 2, OpenFor: 30 * time.Millisecond, HalfOpenProbes: 1,
	}}

	find := func() error {
		_, err := cl.Call("findBusiness", soap.Str("name", "x"))
		return err
	}

	// Two transport failures trip the breaker.
	for i := 0; i < 2; i++ {
		if err := find(); err == nil || errors.Is(err, resilience.ErrOpen) {
			t.Fatalf("failure %d: got %v, want transport error", i, err)
		}
	}
	br := cl.Breakers.For(cl.Endpoint)
	if got := br.State(); got != resilience.StateOpen {
		t.Fatalf("breaker state %v after threshold failures, want open", got)
	}
	// While open, calls fail fast without touching the endpoint.
	if err := find(); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open circuit returned %v, want ErrOpen", err)
	}

	// Heal the endpoint; after the open window one probe closes the circuit.
	ft.down.Store(false)
	time.Sleep(35 * time.Millisecond)
	if err := find(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := br.State(); got != resilience.StateClosed {
		t.Fatalf("breaker state %v after successful probe, want closed", got)
	}
	if err := find(); err != nil {
		t.Fatalf("closed circuit call failed: %v", err)
	}
	snap := br.Snapshot()
	if snap.Opens != 1 || snap.Rejected == 0 {
		t.Errorf("breaker snapshot %+v: want exactly one open with fail-fast rejections", snap)
	}
}
