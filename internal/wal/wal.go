// Package wal implements the durable backend of the persistence seam: an
// append-only, length+CRC32-framed, fsync-batched (group-commit) write-ahead
// log with compacting snapshots and replay-on-boot recovery that tolerates a
// torn tail. See doc.go for a worked example and ROADMAP.md ("Persistence
// model") for the durability contract.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

const (
	// frameHeaderSize is the fixed per-record prefix: a uint32 LE payload
	// length followed by a uint32 LE CRC32 (IEEE) of the payload.
	frameHeaderSize = 8
	// MaxRecordSize bounds one record's payload (1-byte op length + op +
	// data). It matches the SOAP layer's 64 MiB message cap: nothing a
	// service can accept produces a larger mutation record. A frame whose
	// header claims more is treated as corruption, which keeps a torn
	// 4-byte header from provoking a giant allocation during recovery.
	MaxRecordSize = 64 << 20

	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".db"
	snapTmp    = "snap.tmp"
)

// Options configure a Log.
type Options struct {
	// NoSync disables fsync on append and snapshot. Records are still
	// written and framed, but durability is delegated to the OS page
	// cache — a machine crash can lose acknowledged writes. Intended for
	// tests and for measuring the fsync share of the durability tax.
	NoSync bool
}

// Log is an append-only write-ahead log over a directory of segment files
// (wal-<seq>.log) and at most one live snapshot (snap-<seq>.db). It is safe
// for concurrent use; concurrent Appends are group-committed (one fsync
// covers every record queued while the previous fsync was in flight).
//
// Lifecycle: Open, Replay exactly once (before the first Append), then
// Append/Compact freely, then Close.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File // active segment, opened O_APPEND
	seg     uint64   // active segment sequence
	size    int64    // bytes written to the active segment
	pending []byte   // encoded frames queued for the next group commit
	nQueued uint64   // records queued so far
	nSynced uint64   // records durable so far
	syncing bool     // a group commit is in flight
	closed  bool
	err     error // sticky: first write/sync failure poisons the log

	// compactMu serializes Compact calls without blocking Append.
	compactMu sync.Mutex

	snapSeq    uint64   // recovered snapshot generation; 0 = none
	replaySegs []uint64 // segments to replay on boot, ascending
	appended   bool     // an Append happened; Replay is no longer allowed
}

// Open creates or recovers the log in dir. Recovery picks the newest fully
// valid snapshot, discards segments it supersedes, and truncates the log at
// the first bad frame (torn tail): everything before the bad frame replays,
// everything after is dropped, and the log never refuses to start over tail
// corruption. Errors are only returned for environmental failures (the
// directory cannot be created or read).
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt}
	l.cond = sync.NewCond(&l.mu)
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// recover scans the directory, selects the snapshot and segment set to
// replay, truncates a torn tail, and opens the active segment.
func (l *Log) recover() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range ents {
		if n, ok := parseName(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, n)
		} else if n, ok := parseName(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		} else if e.Name() == snapTmp {
			// A crash mid-snapshot: the rename never happened, so the
			// previous generation is still authoritative.
			os.Remove(filepath.Join(l.dir, snapTmp))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	// Newest fully valid snapshot wins. Snapshots are fsynced before the
	// rename that makes them visible, so a bad frame here means
	// filesystem-level damage; fall back to an older generation (whose
	// superseded segments may still exist if the crash also interrupted
	// cleanup) rather than refusing to start.
	for i := len(snaps) - 1; i >= 0; i-- {
		if _, clean, err := scanFile(l.snapPath(snaps[i]), nil); err == nil && clean {
			l.snapSeq = snaps[i]
			break
		}
	}

	// Replay the segments the snapshot does not supersede, in order. The
	// first bad frame truncates its segment and drops every later segment:
	// a record is only acknowledged after fsync, so anything at or past
	// the first bad frame was never acknowledged.
	active, haveActive := uint64(0), false
	for i, s := range segs {
		if s < l.snapSeq {
			continue
		}
		valid, clean, err := scanFile(l.segPath(s), nil)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.replaySegs = append(l.replaySegs, s)
		active, haveActive = s, true
		if !clean {
			if err := os.Truncate(l.segPath(s), valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			for _, drop := range segs[i+1:] {
				os.Remove(l.segPath(drop))
			}
			break
		}
	}
	if !haveActive {
		active = l.snapSeq
		if active == 0 {
			active = 1
		}
		l.replaySegs = append(l.replaySegs, active)
	}
	f, err := os.OpenFile(l.segPath(active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.seg, l.size = f, active, st.Size()
	if !haveActive {
		// A brand-new segment file: make its directory entry durable so a
		// crash cannot lose the file out from under acknowledged appends.
		if err := syncDir(l.dir); err != nil && !l.opt.NoSync {
			f.Close()
			return err
		}
	}
	return nil
}

// Replay streams every recovered record — snapshot first, then log tail in
// append order — into fn. Records logged shortly before a snapshot may also
// appear in the tail, so fn must be idempotent (upsert semantics). Replay
// must run before the first Append; fn's first error aborts the replay and
// is returned.
func (l *Log) Replay(fn func(op string, data []byte) error) error {
	l.mu.Lock()
	if l.appended {
		l.mu.Unlock()
		return errors.New("wal: Replay must run before the first Append")
	}
	snapSeq := l.snapSeq
	segs := append([]uint64(nil), l.replaySegs...)
	l.mu.Unlock()
	if snapSeq > 0 {
		if _, _, err := scanFile(l.snapPath(snapSeq), fn); err != nil {
			return err
		}
	}
	for _, s := range segs {
		if _, _, err := scanFile(l.segPath(s), fn); err != nil {
			return err
		}
	}
	return nil
}

// Append durably writes one record and returns once it (and every record
// queued before it) has been fsynced: a nil return is the acknowledgement
// the recovery contract preserves. Concurrent appenders share fsyncs — each
// caller either leads a group commit or piggybacks on one in flight. op
// must be 1..255 bytes.
func (l *Log) Append(op string, data []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	var err error
	l.pending, err = appendFrame(l.pending, op, data)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.appended = true
	l.nQueued++
	my := l.nQueued
	for {
		if l.nSynced >= my {
			l.mu.Unlock()
			return nil
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return err
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		if !l.syncing {
			l.flushLocked()
			continue
		}
		l.cond.Wait()
	}
}

// flushLocked drains the queue to the active segment as one write followed
// by one fsync — the group commit. Called with l.mu held and l.syncing
// false; the lock is released for the I/O and reacquired before returning.
func (l *Log) flushLocked() {
	batch := l.pending
	top := l.nQueued
	f := l.f
	l.pending = nil
	l.syncing = true
	l.mu.Unlock()
	_, err := f.Write(batch)
	if err == nil && !l.opt.NoSync {
		err = f.Sync()
	}
	l.mu.Lock()
	l.syncing = false
	l.size += int64(len(batch))
	if err != nil {
		l.err = fmt.Errorf("wal: %w", err)
	} else if top > l.nSynced {
		l.nSynced = top
	}
	l.cond.Broadcast()
}

// rotate seals the active segment and starts a new one, returning the new
// segment's sequence. Queued frames are flushed to the sealed segment first
// so no record spans the boundary.
func (l *Log) rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return 0, ErrClosed
		}
		if l.err != nil {
			return 0, l.err
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		if len(l.pending) > 0 {
			l.flushLocked()
			continue
		}
		break
	}
	old := l.f
	newSeg := l.seg + 1
	f, err := os.OpenFile(l.segPath(newSeg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: rotate: %w", err)
		return 0, l.err
	}
	if err := syncDir(l.dir); err != nil && !l.opt.NoSync {
		f.Close()
		l.err = err
		return 0, l.err
	}
	old.Close()
	l.f, l.seg, l.size = f, newSeg, 0
	return newSeg, nil
}

// Compact rotates to a fresh segment, then asks dump to re-emit the current
// state as records into a new snapshot; once the snapshot is durable
// (write, fsync, rename, fsync dir) every older segment and snapshot is
// deleted. dump runs concurrently with appends: records appended during the
// dump land in the new segment and are replayed over the snapshot on boot,
// which is why Replay requires idempotent apply functions. Concurrent
// Compacts serialize; an error leaves the previous generation intact.
func (l *Log) Compact(dump func(add func(op string, data []byte) error) error) error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	newSeg, err := l.rotate()
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, snapTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var frame []byte
	var addErr error
	add := func(op string, data []byte) error {
		frame, addErr = appendFrame(frame[:0], op, data)
		if addErr != nil {
			return addErr
		}
		_, addErr = w.Write(frame)
		return addErr
	}
	err = dump(add)
	if err == nil {
		err = addErr
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil && !l.opt.NoSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, l.snapPath(newSeg)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil && !l.opt.NoSync {
		return err
	}
	// The new snapshot supersedes everything before the segment it was cut
	// against. Deletion failures are harmless: recovery ignores superseded
	// files, and the next Compact retries the cleanup.
	ents, _ := os.ReadDir(l.dir)
	for _, e := range ents {
		if n, ok := parseName(e.Name(), segPrefix, segSuffix); ok && n < newSeg {
			os.Remove(l.segPath(n))
		} else if n, ok := parseName(e.Name(), snapPrefix, snapSuffix); ok && n < newSeg {
			os.Remove(l.snapPath(n))
		}
	}
	return nil
}

// Size returns the byte size of the active segment — the data a Compact
// would fold into a snapshot. Callers use it to pace compaction.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes queued records and closes the active segment. Closing twice
// is safe; Append after Close returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		if len(l.pending) > 0 && l.err == nil {
			l.flushLocked()
			continue
		}
		break
	}
	l.closed = true
	l.cond.Broadcast()
	err := l.f.Close()
	if l.err != nil {
		return l.err
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// --- framing -----------------------------------------------------------------

// appendFrame encodes one record onto dst:
//
//	[uint32 LE payload length][uint32 LE CRC32(payload)][payload]
//	payload = [1-byte op length][op][data]
//
// On error dst is returned unchanged.
func appendFrame(dst []byte, op string, data []byte) ([]byte, error) {
	if len(op) == 0 || len(op) > 255 {
		return dst, fmt.Errorf("wal: op length %d out of range 1..255", len(op))
	}
	n := 1 + len(op) + len(data)
	if n > MaxRecordSize {
		return dst, fmt.Errorf("wal: record of %d bytes exceeds %d byte cap", n, MaxRecordSize)
	}
	start := len(dst)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	dst = append(dst, hdr[:]...)
	dst = append(dst, byte(len(op)))
	dst = append(dst, op...)
	dst = append(dst, data...)
	crc := crc32.ChecksumIEEE(dst[start+frameHeaderSize:])
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc)
	return dst, nil
}

// scanFile frame-walks a file, calling fn (when non-nil) for each valid
// record. It returns the byte length of the valid prefix and whether the
// file ended cleanly at a frame boundary; a torn or corrupt frame stops the
// walk without error (that is the recovery policy), while fn's first error
// aborts the walk and is returned.
func scanFile(path string, fn func(op string, data []byte) error) (valid int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, true, nil
		}
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeaderSize]byte
	var off int64
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, err == io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > MaxRecordSize {
			return off, false, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, false, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return off, false, nil
		}
		opLen := int(payload[0])
		if 1+opLen > len(payload) {
			return off, false, nil
		}
		if fn != nil {
			if err := fn(string(payload[1:1+opLen]), payload[1+opLen:]); err != nil {
				return off, false, err
			}
		}
		off += int64(frameHeaderSize) + int64(n)
	}
}

// --- file naming -------------------------------------------------------------

func (l *Log) segPath(n uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", segPrefix, n, segSuffix))
}

func (l *Log) snapPath(n uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", snapPrefix, n, snapSuffix))
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
