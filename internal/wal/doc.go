// Worked example: a durable counter service on top of the log.
//
// The log stores opaque (op, data) records; the service defines what they
// mean. A counter that must survive kill -9 writes one record per increment
// and replays them on boot:
//
//	l, err := wal.Open(dir, wal.Options{})
//	if err != nil {
//		return err
//	}
//	var count int64
//	err = l.Replay(func(op string, data []byte) error {
//		switch op {
//		case "set": // snapshot record: absolute value
//			count, _ = strconv.ParseInt(string(data), 10, 64)
//		case "inc": // log record: one increment
//			count++
//		}
//		return nil
//	})
//
// Replay streams the newest snapshot first, then the log tail in append
// order. A record appended just before a snapshot was cut may appear in
// both, so apply functions must be idempotent — here "set" is an absolute
// value, so replaying an overlapping "inc" after it is the only hazard, and
// the log's rotate-before-dump ordering guarantees any "inc" in the tail is
// NOT yet folded into the "set" (see Compact). Keyed upserts, the common
// case, are naturally idempotent.
//
// Each increment is acknowledged only after the record is fsynced; the
// group commit means a thousand concurrent increments cost a handful of
// fsyncs, not a thousand:
//
//	if err := l.Append("inc", nil); err != nil {
//		return err // not durable — do not acknowledge
//	}
//	count++ // now safe to expose
//
// Periodically, fold the log into a snapshot so recovery stays O(state)
// instead of O(history). Compact rotates to a fresh segment first, then
// dumps; appends proceed concurrently and land in the new segment:
//
//	if l.Size() > 4<<20 {
//		err := l.Compact(func(add func(op string, data []byte) error) error {
//			return add("set", []byte(strconv.FormatInt(count, 10)))
//		})
//	}
//
// On disk this leaves wal-<seq>.log segments and one snap-<seq>.db. A crash
// can tear the last frame of the active segment; Open truncates the tail at
// the first bad frame and starts anyway — by construction nothing at or
// past that frame was ever acknowledged. A crash during Compact leaves
// either the old generation (rename not yet durable) or the new one, never
// a mix.
//
// The three portal stores (uddi, xmlregistry, contextmgr) use exactly this
// pattern through the persist.Store seam, with JSON-encoded records.
package wal
