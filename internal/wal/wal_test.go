package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct{ op, data string }

func openT(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendT(t *testing.T, l *Log, recs ...rec) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r.op, []byte(r.data)); err != nil {
			t.Fatalf("Append(%s): %v", r.op, err)
		}
	}
}

func replayT(t *testing.T, l *Log) []rec {
	t.Helper()
	var got []rec
	if err := l.Replay(func(op string, data []byte) error {
		got = append(got, rec{op, string(data)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

// activeSegment returns the path of the newest segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (err %v)", dir, err)
	}
	return matches[len(matches)-1] // lexicographic == numeric (zero-padded)
}

// frameLen is the on-disk size of one record's frame.
func frameLen(r rec) int64 {
	return frameHeaderSize + 1 + int64(len(r.op)) + int64(len(r.data))
}

// TestRecovery is the table-driven edge-case suite: each case prepares a
// log directory (normal appends plus deliberate damage), reopens it, and
// asserts exactly which records survive.
func TestRecovery(t *testing.T) {
	a, b, c := rec{"put", "a"}, rec{"put", "bb"}, rec{"del", "ccc"}
	cases := []struct {
		name  string
		setup func(t *testing.T, dir string)
		want  []rec
	}{
		{
			name:  "empty log",
			setup: func(t *testing.T, dir string) {},
			want:  nil,
		},
		{
			name: "clean shutdown replays everything in order",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a, b, c)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
			},
			want: []rec{a, b, c},
		},
		{
			name: "torn final frame is truncated, prefix survives",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a, b)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				// A crash mid-write: half a header trails the log.
				f, err := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: []rec{a, b},
		},
		{
			name: "torn final payload is truncated, prefix survives",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				// A full header claiming 64 bytes, then only 5 of them.
				f, err := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{64, 0, 0, 0, 1, 2, 3, 4, 'x', 'y', 'z', 'z', 'y'}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: []rec{a},
		},
		{
			name: "CRC corruption mid-log truncates there, dropping the rest",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a, b, c)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				// Flip one byte inside b's payload: a replays, b fails its
				// CRC, and c — though intact on disk — is dropped, because
				// the log's guarantee is a consistent prefix, not a
				// hole-punched sequence.
				seg := activeSegment(t, dir)
				buf, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				buf[frameLen(a)+frameHeaderSize+1] ^= 0xFF
				if err := os.WriteFile(seg, buf, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: []rec{a},
		},
		{
			name: "insane frame length is corruption, not an allocation",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				// Length 0xFFFFFFFF with a matching-length lie.
				if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 'x'}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: []rec{a},
		},
		{
			name: "snapshot replays first, then the tail, in order",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a, b)
				if err := l.Compact(func(add func(string, []byte) error) error {
					// The service's dump: current state as one record.
					return add("state", []byte("a+bb"))
				}); err != nil {
					t.Fatal(err)
				}
				appendT(t, l, c)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
			},
			want: []rec{{"state", "a+bb"}, c},
		},
		{
			name: "torn tail after a snapshot keeps the snapshot and clean tail",
			setup: func(t *testing.T, dir string) {
				l := openT(t, dir)
				appendT(t, l, a)
				if err := l.Compact(func(add func(string, []byte) error) error {
					return add("state", []byte("a"))
				}); err != nil {
					t.Fatal(err)
				}
				appendT(t, l, b)
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				f, err := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{9, 9}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: []rec{{"state", "a"}, b},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.setup(t, dir)
			l := openT(t, dir)
			defer l.Close()
			got := replayT(t, l)
			if len(got) != len(tc.want) {
				t.Fatalf("replayed %d records, want %d: %v", len(got), len(tc.want), got)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("record %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
			// The log must accept appends after any recovery, and a second
			// reopen must see the recovered prefix plus the new record.
			post := rec{"post", "recovery"}
			appendT(t, l, post)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := openT(t, dir)
			defer l2.Close()
			got2 := replayT(t, l2)
			if len(got2) != len(tc.want)+1 || got2[len(got2)-1] != post {
				t.Fatalf("after re-append, replayed %v", got2)
			}
		})
	}
}

func TestDoubleCloseAndUseAfterClose(t *testing.T) {
	l := openT(t, t.TempDir())
	appendT(t, l, rec{"a", "1"})
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append("a", nil); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestReplayAfterAppendRefused(t *testing.T) {
	l := openT(t, t.TempDir())
	defer l.Close()
	appendT(t, l, rec{"a", "1"})
	if err := l.Replay(func(string, []byte) error { return nil }); err == nil {
		t.Fatal("Replay after Append should fail")
	}
}

func TestBadOps(t *testing.T) {
	l := openT(t, t.TempDir())
	defer l.Close()
	if err := l.Append("", nil); err == nil {
		t.Fatal("empty op accepted")
	}
	long := make([]byte, 256)
	for i := range long {
		long[i] = 'x'
	}
	if err := l.Append(string(long), nil); err == nil {
		t.Fatal("256-byte op accepted")
	}
	// A failed append must not poison the frame stream for later records.
	appendT(t, l, rec{"ok", "1"})
}

// TestConcurrentAppendGroupCommit drives parallel appenders through the
// group-commit path and verifies every acknowledged record replays exactly
// once, in a per-goroutine order consistent with append order.
func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append("w", []byte(fmt.Sprintf("%d/%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	seen := map[string]int{}
	last := make([]int, writers)
	for i := range last {
		last[i] = -1
	}
	for _, r := range replayT(t, l2) {
		seen[r.data]++
		var w, i int
		fmt.Sscanf(r.data, "%d/%d", &w, &i)
		if i != last[w]+1 {
			t.Fatalf("writer %d: record %d replayed after %d", w, i, last[w])
		}
		last[w] = i
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*perWriter)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("record %s replayed %d times", k, n)
		}
	}
}

// TestCompactUnderConcurrentAppends interleaves compactions with appends
// and verifies no acknowledged record is lost: every record either lands in
// the snapshot the dump cut or survives in the tail.
func TestCompactUnderConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	var mu sync.Mutex
	state := map[string]bool{} // the "service": a set of applied keys
	const writers, perWriter = 4, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%d/%d", w, i)
				// Mutate-then-log under the state lock, like the services do.
				mu.Lock()
				if err := l.Append("add", []byte(key)); err != nil {
					mu.Unlock()
					t.Errorf("Append: %v", err)
					return
				}
				state[key] = true
				mu.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			err := l.Compact(func(add func(string, []byte) error) error {
				mu.Lock()
				defer mu.Unlock()
				for k := range state {
					if err := add("has", []byte(k)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("Compact: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir)
	defer l2.Close()
	recovered := map[string]bool{}
	for _, r := range replayT(t, l2) {
		recovered[r.data] = true
	}
	for k := range state {
		if !recovered[k] {
			t.Fatalf("acknowledged record %s lost across compaction", k)
		}
	}
}
