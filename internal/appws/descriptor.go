// Package appws implements the Application Web Services of Section 5: a
// portal-independent way to describe how to use a science application and
// bind it to the core services it needs. The abstract application
// description is "a set of three schemas: application, host, and queue ...
// implemented in a container hierarchy, with applications containing one or
// more hosts, and hosts containing queuing system descriptions." Instances
// of a second schema set capture "the metadata about particular application
// runs: the input files used, the location of the output, the resources
// used for the computation" — the backbone of the session archiving
// system.
//
// The lifecycle follows Section 5.1's four phases: (a) abstract, (b)
// prepared, (c) running (refined into queued/running), and (d) archived.
package appws

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/grid"
	"repro/internal/xmlutil"
)

// Param is a generic name/value parameter — the "general purpose parameter
// element that allows for arbitrary name-value pairs".
type Param struct {
	Name  string
	Value string
}

// FieldBinding describes one internal-communication field (input, output,
// or error) and the core service bound to read or write it.
type FieldBinding struct {
	// Name is the field name (e.g. "inputDeck").
	Name string
	// Description is human-readable.
	Description string
	// Service names the bound core service (e.g. "SRBService").
	Service string
	// Location is the service-specific locator (e.g. an SRB path).
	Location string
}

// QueueBinding holds "information needed to perform queue submissions" on
// a host.
type QueueBinding struct {
	// Scheduler is the queuing system kind.
	Scheduler grid.SchedulerKind
	// Queue is the queue name.
	Queue string
	// MaxNodes bounds requests.
	MaxNodes int
	// MaxWallTime bounds requests.
	MaxWallTime time.Duration
}

// HostBinding holds "information about the resource ... and all of the
// information needed to invoke the parent application on that resource".
type HostBinding struct {
	// DNS is the host name.
	DNS string
	// IP is the dotted address.
	IP string
	// Executable is the application's path on this host.
	Executable string
	// WorkDir is the scratch/workspace directory.
	WorkDir string
	// Queue is the queue binding.
	Queue QueueBinding
	// Parameters carries host-specific settings (environment variables
	// etc.).
	Parameters []Param
}

// Descriptor is the abstract application description (state (a)): the
// choices available to a user, independent of any portal.
type Descriptor struct {
	// Name is the application name (e.g. "Gaussian").
	Name string
	// Version is the application version.
	Version string
	// Description is human-readable.
	Description string
	// Flags are the option flags of the basic information element.
	Flags []string
	// Input, Output, Error are the internal-communication bindings.
	Input  FieldBinding
	Output FieldBinding
	Error  FieldBinding
	// Services lists the core services required to execute the
	// application (the execution environment element).
	Services []string
	// Hosts are the host bindings.
	Hosts []HostBinding
	// Parameters is the generic extension element.
	Parameters []Param
}

// Host returns the binding for a DNS name, or nil.
func (d *Descriptor) Host(dns string) *HostBinding {
	for i := range d.Hosts {
		if d.Hosts[i].DNS == dns {
			return &d.Hosts[i]
		}
	}
	return nil
}

// Validate checks descriptor completeness.
func (d *Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("appws: descriptor has no name")
	}
	if len(d.Hosts) == 0 {
		return fmt.Errorf("appws: descriptor %s has no host bindings", d.Name)
	}
	for _, h := range d.Hosts {
		if h.DNS == "" || h.Executable == "" {
			return fmt.Errorf("appws: descriptor %s: host binding missing DNS or executable", d.Name)
		}
		if h.Queue.Scheduler == "" {
			return fmt.Errorf("appws: descriptor %s: host %s has no queue binding", d.Name, h.DNS)
		}
	}
	return nil
}

func paramsElement(params []Param) []*xmlutil.Element {
	var out []*xmlutil.Element
	for _, p := range params {
		out = append(out, xmlutil.NewText("parameter", p.Value).SetAttr("name", p.Name))
	}
	return out
}

func paramsFrom(el *xmlutil.Element) []Param {
	var out []Param
	for _, p := range el.ChildrenNamed("parameter") {
		out = append(out, Param{Name: p.AttrDefault("name", ""), Value: p.Text})
	}
	return out
}

func fieldElement(name string, f FieldBinding) *xmlutil.Element {
	el := xmlutil.New(name).SetAttr("name", f.Name)
	if f.Description != "" {
		el.AddText("description", f.Description)
	}
	if f.Service != "" {
		binding := xmlutil.New("serviceBinding").SetAttr("service", f.Service)
		if f.Location != "" {
			binding.SetAttr("location", f.Location)
		}
		el.Add(binding)
	}
	return el
}

func fieldFrom(el *xmlutil.Element) FieldBinding {
	f := FieldBinding{
		Name:        el.AttrDefault("name", ""),
		Description: el.ChildText("description"),
	}
	if b := el.Child("serviceBinding"); b != nil {
		f.Service = b.AttrDefault("service", "")
		f.Location = b.AttrDefault("location", "")
	}
	return f
}

// Element renders the descriptor as the application schema instance: the
// basic-information, internal-communication, execution-environment, and
// generic-parameter elements of Section 5.1, with nested host and queue
// descriptions.
func (d *Descriptor) Element() *xmlutil.Element {
	root := xmlutil.New("application")
	basic := xmlutil.New("basicInformation")
	basic.AddText("name", d.Name)
	basic.AddText("version", d.Version)
	if d.Description != "" {
		basic.AddText("description", d.Description)
	}
	for _, f := range d.Flags {
		basic.AddText("flag", f)
	}
	root.Add(basic)
	comm := xmlutil.New("internalCommunication")
	comm.Add(fieldElement("input", d.Input))
	comm.Add(fieldElement("output", d.Output))
	comm.Add(fieldElement("error", d.Error))
	root.Add(comm)
	env := xmlutil.New("executionEnvironment")
	for _, s := range d.Services {
		env.AddText("service", s)
	}
	for _, h := range d.Hosts {
		hostEl := xmlutil.New("host").
			SetAttr("dns", h.DNS).
			SetAttr("ip", h.IP)
		hostEl.AddText("executable", h.Executable)
		hostEl.AddText("workDir", h.WorkDir)
		q := xmlutil.New("queue").
			SetAttr("scheduler", string(h.Queue.Scheduler)).
			SetAttr("name", h.Queue.Queue)
		q.AddText("maxNodes", strconv.Itoa(h.Queue.MaxNodes))
		q.AddText("maxWallTimeSeconds", strconv.Itoa(int(h.Queue.MaxWallTime/time.Second)))
		hostEl.Add(q)
		hostEl.Add(paramsElement(h.Parameters)...)
		env.Add(hostEl)
	}
	root.Add(env)
	root.Add(paramsElement(d.Parameters)...)
	return root
}

// DescriptorFromElement parses an application schema instance.
func DescriptorFromElement(root *xmlutil.Element) (*Descriptor, error) {
	if root.Name != "application" {
		return nil, fmt.Errorf("appws: root element %q is not application", root.Name)
	}
	d := &Descriptor{}
	basic := root.Child("basicInformation")
	if basic == nil {
		return nil, fmt.Errorf("appws: descriptor missing basicInformation")
	}
	d.Name = basic.ChildText("name")
	d.Version = basic.ChildText("version")
	d.Description = basic.ChildText("description")
	for _, f := range basic.ChildrenNamed("flag") {
		d.Flags = append(d.Flags, f.Text)
	}
	if comm := root.Child("internalCommunication"); comm != nil {
		if in := comm.Child("input"); in != nil {
			d.Input = fieldFrom(in)
		}
		if out := comm.Child("output"); out != nil {
			d.Output = fieldFrom(out)
		}
		if errEl := comm.Child("error"); errEl != nil {
			d.Error = fieldFrom(errEl)
		}
	}
	env := root.Child("executionEnvironment")
	if env == nil {
		return nil, fmt.Errorf("appws: descriptor %s missing executionEnvironment", d.Name)
	}
	for _, s := range env.ChildrenNamed("service") {
		d.Services = append(d.Services, s.Text)
	}
	for _, hostEl := range env.ChildrenNamed("host") {
		h := HostBinding{
			DNS:        hostEl.AttrDefault("dns", ""),
			IP:         hostEl.AttrDefault("ip", ""),
			Executable: hostEl.ChildText("executable"),
			WorkDir:    hostEl.ChildText("workDir"),
			Parameters: paramsFrom(hostEl),
		}
		if q := hostEl.Child("queue"); q != nil {
			h.Queue.Scheduler = grid.SchedulerKind(q.AttrDefault("scheduler", ""))
			h.Queue.Queue = q.AttrDefault("name", "")
			if v := q.Child("maxNodes"); v != nil {
				h.Queue.MaxNodes, _ = v.Int()
			}
			if v := q.Child("maxWallTimeSeconds"); v != nil {
				secs, _ := v.Int()
				h.Queue.MaxWallTime = time.Duration(secs) * time.Second
			}
		}
		d.Hosts = append(d.Hosts, h)
	}
	d.Parameters = paramsFrom(root)
	return d, d.Validate()
}

// --- Adapter facade (Section 5.2) --------------------------------------------

// Adapter is the small interface the paper builds instead of exporting
// every generated accessor: "we are building an adapter class that
// encapsulates several Castor-generated get and set calls into a smaller
// interface definition for common tasks". Its method count versus the full
// accessor explosion is the S5.2 measurement.
type Adapter struct {
	d *Descriptor
	// choices staged by the adapter before producing a run request.
	host     string
	nodes    int
	wallTime time.Duration
	args     []string
	stdinDoc string
}

// NewAdapter wraps a descriptor.
func NewAdapter(d *Descriptor) *Adapter {
	return &Adapter{d: d, nodes: 1}
}

// AdapterMethodNames lists the facade's public operations (kept in sync
// with the methods below; the S5.2 test compares this against the
// generated accessor list).
func AdapterMethodNames() []string {
	return []string{"ChooseHost", "SetNodes", "SetWallTime", "SetArguments", "SetInputDocument", "RunRequest"}
}

// ChooseHost selects a host binding by DNS name.
func (a *Adapter) ChooseHost(dns string) error {
	if a.d.Host(dns) == nil {
		return fmt.Errorf("appws: application %s has no host binding for %q", a.d.Name, dns)
	}
	a.host = dns
	return nil
}

// SetNodes stages the processor count.
func (a *Adapter) SetNodes(n int) error {
	if n <= 0 {
		return fmt.Errorf("appws: nodes must be positive")
	}
	a.nodes = n
	return nil
}

// SetWallTime stages the wallclock request.
func (a *Adapter) SetWallTime(d time.Duration) { a.wallTime = d }

// SetArguments stages program arguments.
func (a *Adapter) SetArguments(args []string) { a.args = append([]string(nil), args...) }

// SetInputDocument stages the input deck contents.
func (a *Adapter) SetInputDocument(doc string) { a.stdinDoc = doc }

// RunRequest materialises the staged choices into a host, job spec, and
// input document, validating against the queue binding.
func (a *Adapter) RunRequest() (string, grid.JobSpec, error) {
	if a.host == "" {
		return "", grid.JobSpec{}, fmt.Errorf("appws: no host chosen")
	}
	hb := a.d.Host(a.host)
	if hb.Queue.MaxNodes > 0 && a.nodes > hb.Queue.MaxNodes {
		return "", grid.JobSpec{}, fmt.Errorf("appws: host %s queue admits %d nodes, requested %d",
			a.host, hb.Queue.MaxNodes, a.nodes)
	}
	wall := a.wallTime
	if wall == 0 {
		wall = hb.Queue.MaxWallTime
	}
	if hb.Queue.MaxWallTime > 0 && wall > hb.Queue.MaxWallTime {
		return "", grid.JobSpec{}, fmt.Errorf("appws: host %s queue caps walltime at %s, requested %s",
			a.host, hb.Queue.MaxWallTime, wall)
	}
	spec := grid.JobSpec{
		Name:       a.d.Name,
		Executable: hb.Executable,
		Args:       a.args,
		Stdin:      a.stdinDoc,
		Queue:      hb.Queue.Queue,
		Nodes:      a.nodes,
		WallTime:   wall,
	}
	return a.host, spec, nil
}
