package appws

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/rpc"
	"repro/internal/soap"
	"repro/internal/srbws"
	"repro/internal/wsdl"
	"repro/internal/xmlutil"
)

// InstanceState is an application instance's lifecycle phase. Prepared,
// Queued/Running, and Archived correspond to the paper's states (b), (c),
// and (d); Completed and Failed refine the end of the running phase.
type InstanceState string

// Instance lifecycle states.
const (
	StatePrepared  InstanceState = "PREPARED"
	StateQueued    InstanceState = "QUEUED"
	StateRunning   InstanceState = "RUNNING"
	StateCompleted InstanceState = "COMPLETED"
	StateFailed    InstanceState = "FAILED"
	StateArchived  InstanceState = "ARCHIVED"
)

// Instance is one concrete application run: the instance-schema metadata —
// input used, resources used, output location — that backs the session
// archive.
type Instance struct {
	// ID is the manager-assigned instance identifier.
	ID string
	// Application and Host locate the run.
	Application string
	Host        string
	// Spec is the materialised job specification.
	Spec grid.JobSpec
	// State is the lifecycle phase.
	State InstanceState
	// Contact is the grid job contact once submitted.
	Contact string
	// Prepared/Submitted/Finished are lifecycle timestamps.
	Prepared  time.Time
	Submitted time.Time
	Finished  time.Time
	// Stdout holds the collected output after completion.
	Stdout string
	// OutputLocation is where Archive stored the output.
	OutputLocation string
	// Error describes a failure.
	Error string
}

// Element renders the instance-schema document for a run.
func (inst *Instance) Element() *xmlutil.Element {
	el := xmlutil.New("applicationInstance").SetAttr("id", inst.ID)
	el.AddText("application", inst.Application)
	el.AddText("host", inst.Host)
	el.AddText("state", string(inst.State))
	el.AddText("executable", inst.Spec.Executable)
	el.AddText("nodes", strconv.Itoa(inst.Spec.Nodes))
	el.AddText("wallTimeSeconds", strconv.Itoa(int(inst.Spec.WallTime/time.Second)))
	for _, a := range inst.Spec.Args {
		el.AddText("argument", a)
	}
	if inst.Contact != "" {
		el.AddText("contact", inst.Contact)
	}
	if inst.OutputLocation != "" {
		el.AddText("outputLocation", inst.OutputLocation)
	}
	if inst.Error != "" {
		el.AddText("error", inst.Error)
	}
	if !inst.Prepared.IsZero() {
		el.AddText("prepared", inst.Prepared.UTC().Format(time.RFC3339))
	}
	if !inst.Submitted.IsZero() {
		el.AddText("submitted", inst.Submitted.UTC().Format(time.RFC3339))
	}
	if !inst.Finished.IsZero() {
		el.AddText("finished", inst.Finished.UTC().Format(time.RFC3339))
	}
	return el
}

// Manager owns application descriptors and instance lifecycles, delegating
// execution to the Globusrun Web Service and archival to the SRB Web
// Service — the core-service bindings the descriptors declare.
type Manager struct {
	// Globusrun executes jobs; required.
	Globusrun *jobsub.GlobusrunClient
	// SRB archives output; when nil, Archive stores in-memory only.
	SRB *srbws.Client
	// ArchiveCollection is the SRB collection for archived output.
	ArchiveCollection string

	mu        sync.RWMutex
	apps      map[string]*Descriptor
	instances map[string]*Instance
	seq       int
	now       func() time.Time
}

// NewManager creates an empty manager.
func NewManager(globusrun *jobsub.GlobusrunClient) *Manager {
	return &Manager{
		Globusrun: globusrun,
		apps:      map[string]*Descriptor{},
		instances: map[string]*Instance{},
		now:       time.Now,
	}
}

// SetTimeSource overrides the clock.
func (m *Manager) SetTimeSource(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// Register validates and stores a descriptor.
func (m *Manager) Register(d *Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.apps[d.Name]; dup {
		return fmt.Errorf("appws: application %q already registered", d.Name)
	}
	m.apps[d.Name] = d
	return nil
}

// Applications lists registered application names, sorted.
func (m *Manager) Applications() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.apps))
	for n := range m.apps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns a registered descriptor.
func (m *Manager) Describe(name string) (*Descriptor, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.apps[name]
	if !ok {
		return nil, fmt.Errorf("appws: unknown application %q", name)
	}
	return d, nil
}

// Prepare materialises user choices into a prepared instance (state (b)).
func (m *Manager) Prepare(app, host string, nodes int, wallTime time.Duration, args []string, input string) (*Instance, error) {
	d, err := m.Describe(app)
	if err != nil {
		return nil, err
	}
	a := NewAdapter(d)
	if err := a.ChooseHost(host); err != nil {
		return nil, err
	}
	if nodes > 0 {
		if err := a.SetNodes(nodes); err != nil {
			return nil, err
		}
	}
	a.SetWallTime(wallTime)
	a.SetArguments(args)
	a.SetInputDocument(input)
	hostDNS, spec, err := a.RunRequest()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	inst := &Instance{
		ID:          fmt.Sprintf("%s-%d", app, m.seq),
		Application: app,
		Host:        hostDNS,
		Spec:        spec,
		State:       StatePrepared,
		Prepared:    m.now(),
	}
	m.instances[inst.ID] = inst
	return inst, nil
}

// get fetches an instance.
func (m *Manager) get(id string) (*Instance, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	inst, ok := m.instances[id]
	if !ok {
		return nil, fmt.Errorf("appws: unknown instance %q", id)
	}
	return inst, nil
}

// Instance returns a snapshot of an instance.
func (m *Manager) Instance(id string) (Instance, error) {
	inst, err := m.get(id)
	if err != nil {
		return Instance{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return *inst, nil
}

// Instances lists instance IDs sorted.
func (m *Manager) Instances() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.instances))
	for id := range m.instances {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Submit moves a prepared instance into the running phase via the
// Globusrun Web Service.
func (m *Manager) Submit(id string) error {
	inst, err := m.get(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if inst.State != StatePrepared {
		m.mu.Unlock()
		return fmt.Errorf("appws: instance %s is %s, not PREPARED", id, inst.State)
	}
	spec := inst.Spec
	host := inst.Host
	m.mu.Unlock()
	contact, err := m.Globusrun.Submit(host, grid.FormatRSL(spec))
	if err != nil {
		m.mu.Lock()
		inst.State = StateFailed
		inst.Error = err.Error()
		m.mu.Unlock()
		return err
	}
	m.mu.Lock()
	inst.Contact = contact
	inst.State = StateQueued
	inst.Submitted = m.now()
	m.mu.Unlock()
	return nil
}

// Poll refreshes a submitted instance's state from the grid.
func (m *Manager) Poll(id string) (InstanceState, error) {
	inst, err := m.get(id)
	if err != nil {
		return "", err
	}
	m.mu.RLock()
	state := inst.State
	host, contact := inst.Host, inst.Contact
	m.mu.RUnlock()
	if state != StateQueued && state != StateRunning {
		return state, nil
	}
	gridState, err := m.Globusrun.Status(host, contact)
	if err != nil {
		return state, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch gridState {
	case grid.StateQueued:
		inst.State = StateQueued
	case grid.StateRunning:
		inst.State = StateRunning
	case grid.StateCompleted:
		inst.State = StateCompleted
		inst.Finished = m.now()
	case grid.StateFailed, grid.StateCancelled:
		inst.State = StateFailed
		inst.Finished = m.now()
		inst.Error = fmt.Sprintf("grid job %s", gridState)
	}
	return inst.State, nil
}

// RunSynchronously executes a prepared instance to completion via the
// Globusrun run method, capturing stdout.
func (m *Manager) RunSynchronously(id string) error {
	inst, err := m.get(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	if inst.State != StatePrepared {
		m.mu.Unlock()
		return fmt.Errorf("appws: instance %s is %s, not PREPARED", id, inst.State)
	}
	spec := inst.Spec
	host := inst.Host
	inst.State = StateRunning
	inst.Submitted = m.now()
	m.mu.Unlock()
	out, err := m.Globusrun.Run(host, grid.FormatRSL(spec))
	m.mu.Lock()
	defer m.mu.Unlock()
	inst.Finished = m.now()
	if err != nil {
		inst.State = StateFailed
		inst.Error = err.Error()
		return err
	}
	inst.State = StateCompleted
	inst.Stdout = out
	return nil
}

// Archive moves a finished instance to the archived phase (state (d)),
// storing its output through the SRB service binding when configured.
func (m *Manager) Archive(id string) (string, error) {
	inst, err := m.get(id)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if inst.State != StateCompleted && inst.State != StateFailed {
		state := inst.State
		m.mu.Unlock()
		return "", fmt.Errorf("appws: instance %s is %s; only finished instances archive", id, state)
	}
	stdout := inst.Stdout
	m.mu.Unlock()
	location := fmt.Sprintf("memory:%s.out", id)
	if m.SRB != nil {
		location = m.ArchiveCollection + "/" + id + ".out"
		if err := m.SRB.Put(location, stdout, ""); err != nil {
			return "", err
		}
	}
	m.mu.Lock()
	inst.OutputLocation = location
	inst.State = StateArchived
	m.mu.Unlock()
	return location, nil
}

// --- SOAP service --------------------------------------------------------------

// ServiceNS is the Application Web Service namespace.
const ServiceNS = "urn:gce:appws"

// def is the declarative operation table of the Application Web Service:
// the adapter facade exposed over SOAP rather than the impractical full
// accessor set.
func def(m *Manager) *rpc.Def {
	fail := func(code string, err error) ([]interface{}, error) {
		if pe := soap.AsPortalError(err); pe != nil {
			return nil, pe
		}
		return nil, soap.NewPortalError("ApplicationService", code, "%v", err)
	}
	return &rpc.Def{
		Name: "ApplicationService",
		NS:   ServiceNS,
		Doc:  "Application Web Services: descriptors, lifecycle, and archival.",
		Ops: []rpc.Op{
			{
				Name:       "listApplications",
				Idempotent: true,
				Out:        []wsdl.Param{rpc.Strs("names")},
				Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
					return rpc.Ret(m.Applications()), nil
				},
			},
			{
				Name:       "describeApplication",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("name")},
				Out:        []wsdl.Param{rpc.XML("descriptor")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					d, err := m.Describe(in.Str("name"))
					if err != nil {
						return fail(soap.ErrCodeNoSuchResource, err)
					}
					return rpc.Ret(d.Element()), nil
				},
			},
			{
				Name: "prepare",
				In: []wsdl.Param{rpc.Str("application"), rpc.Str("host"), rpc.Int("nodes"),
					rpc.Int("wallTimeSeconds"), rpc.Strs("arguments"), rpc.Str("input")},
				Out: []wsdl.Param{rpc.Str("instanceID")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					inst, err := m.Prepare(
						in.Str("application"), in.Str("host"), in.Int("nodes"),
						time.Duration(in.Int("wallTimeSeconds"))*time.Second,
						in.Strings("arguments"), in.Str("input"))
					if err != nil {
						return fail(soap.ErrCodeBadRequest, err)
					}
					return rpc.Ret(inst.ID), nil
				},
			},
			{
				Name: "submit",
				In:   []wsdl.Param{rpc.Str("instanceID")},
				Out:  []wsdl.Param{rpc.Str("contact")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					id := in.Str("instanceID")
					if err := m.Submit(id); err != nil {
						return fail(soap.ErrCodeJobFailed, err)
					}
					inst, _ := m.Instance(id)
					return rpc.Ret(inst.Contact), nil
				},
			},
			{
				Name:       "poll",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("instanceID")},
				Out:        []wsdl.Param{rpc.Str("state")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					state, err := m.Poll(in.Str("instanceID"))
					if err != nil {
						return fail(soap.ErrCodeNoSuchResource, err)
					}
					return rpc.Ret(string(state)), nil
				},
			},
			{
				Name: "run",
				In:   []wsdl.Param{rpc.Str("instanceID")},
				Out:  []wsdl.Param{rpc.Str("output")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					id := in.Str("instanceID")
					if err := m.RunSynchronously(id); err != nil {
						return fail(soap.ErrCodeJobFailed, err)
					}
					inst, _ := m.Instance(id)
					return rpc.Ret(inst.Stdout), nil
				},
			},
			{
				Name: "archive",
				In:   []wsdl.Param{rpc.Str("instanceID")},
				Out:  []wsdl.Param{rpc.Str("location")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					location, err := m.Archive(in.Str("instanceID"))
					if err != nil {
						return fail(soap.ErrCodeBadRequest, err)
					}
					return rpc.Ret(location), nil
				},
			},
			{
				Name:       "getInstance",
				Idempotent: true,
				In:         []wsdl.Param{rpc.Str("instanceID")},
				Out:        []wsdl.Param{rpc.XML("instance")},
				Handle: func(_ *core.Context, in rpc.Args) ([]interface{}, error) {
					inst, err := m.Instance(in.Str("instanceID"))
					if err != nil {
						return fail(soap.ErrCodeNoSuchResource, err)
					}
					return rpc.Ret(inst.Element()), nil
				},
			},
			{
				Name:       "listInstances",
				Idempotent: true,
				Out:        []wsdl.Param{rpc.Strs("instanceIDs")},
				Handle: func(_ *core.Context, _ rpc.Args) ([]interface{}, error) {
					return rpc.Ret(m.Instances()), nil
				},
			},
		},
	}
}

// Contract returns the Application Web Service interface.
func Contract() *wsdl.Interface {
	return def(nil).Interface()
}

// NewService deploys a manager behind the contract, built from the
// declarative operation table.
func NewService(m *Manager) *core.Service {
	return def(m).MustBuild()
}
