package appws

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/databind"
	"repro/internal/grid"
	"repro/internal/jobsub"
	"repro/internal/soap"
	"repro/internal/srb"
	"repro/internal/srbws"
)

// gaussianDescriptor is the canonical Application Web Service example (the
// paper names Gaussian as the application whose description "can be
// standard across portals").
func gaussianDescriptor() *Descriptor {
	return &Descriptor{
		Name:        "Gaussian",
		Version:     "98-A.7",
		Description: "Quantum chemistry package",
		Flags:       []string{"-direct"},
		Input:       FieldBinding{Name: "inputDeck", Service: "SRBService", Location: "/sdsc/home/mock/decks"},
		Output:      FieldBinding{Name: "logFile", Service: "SRBService", Location: "/sdsc/home/mock/archives"},
		Error:       FieldBinding{Name: "errFile", Service: "SRBService"},
		Services:    []string{"Globusrun", "SRBService"},
		Hosts: []HostBinding{
			{
				DNS: "bluehorizon.sdsc.edu", IP: "198.202.96.41",
				Executable: "/usr/local/bin/gaussian", WorkDir: "/scratch",
				Queue:      QueueBinding{Scheduler: grid.LSF, Queue: "normal", MaxNodes: 64, MaxWallTime: 4 * time.Hour},
				Parameters: []Param{{Name: "GAUSS_SCRDIR", Value: "/scratch/gauss"}},
			},
			{
				DNS: "modi4.ncsa.uiuc.edu", IP: "141.142.30.72",
				Executable: "/usr/local/bin/gaussian", WorkDir: "/scratch",
				Queue: QueueBinding{Scheduler: grid.PBS, Queue: "batch", MaxNodes: 32, MaxWallTime: 2 * time.Hour},
			},
		},
		Parameters: []Param{{Name: "license", Value: "site"}},
	}
}

func TestDescriptorXMLRoundTrip(t *testing.T) {
	d := gaussianDescriptor()
	el := d.Element()
	back, err := DescriptorFromElement(el)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Gaussian" || back.Version != "98-A.7" {
		t.Errorf("basic = %+v", back)
	}
	if back.Input.Service != "SRBService" || back.Input.Location != "/sdsc/home/mock/decks" {
		t.Errorf("input = %+v", back.Input)
	}
	if len(back.Services) != 2 || len(back.Hosts) != 2 {
		t.Errorf("env = %v / %v", back.Services, back.Hosts)
	}
	h := back.Host("bluehorizon.sdsc.edu")
	if h == nil || h.Queue.Scheduler != grid.LSF || h.Queue.MaxWallTime != 4*time.Hour {
		t.Errorf("host = %+v", h)
	}
	if len(h.Parameters) != 1 || h.Parameters[0].Name != "GAUSS_SCRDIR" {
		t.Errorf("host params = %+v", h.Parameters)
	}
	if len(back.Parameters) != 1 || back.Parameters[0].Value != "site" {
		t.Errorf("generic params = %+v", back.Parameters)
	}
	// Round trip is stable.
	if back.Element().Render() != el.Render() {
		t.Error("descriptor XML not stable")
	}
}

func TestDescriptorValidation(t *testing.T) {
	if err := (&Descriptor{}).Validate(); err == nil {
		t.Error("empty descriptor accepted")
	}
	d := gaussianDescriptor()
	d.Hosts = nil
	if err := d.Validate(); err == nil {
		t.Error("hostless descriptor accepted")
	}
	d = gaussianDescriptor()
	d.Hosts[0].Executable = ""
	if err := d.Validate(); err == nil {
		t.Error("missing executable accepted")
	}
	d = gaussianDescriptor()
	d.Hosts[0].Queue.Scheduler = ""
	if err := d.Validate(); err == nil {
		t.Error("missing queue binding accepted")
	}
	if _, err := DescriptorFromElement(gaussianDescriptor().Element().Child("basicInformation")); err == nil {
		t.Error("wrong root accepted")
	}
}

func TestAdapterStagingAndLimits(t *testing.T) {
	d := gaussianDescriptor()
	a := NewAdapter(d)
	if _, _, err := a.RunRequest(); err == nil {
		t.Error("run without host accepted")
	}
	if err := a.ChooseHost("nowhere.edu"); err == nil {
		t.Error("unknown host accepted")
	}
	if err := a.ChooseHost("bluehorizon.sdsc.edu"); err != nil {
		t.Fatal(err)
	}
	if err := a.SetNodes(0); err == nil {
		t.Error("zero nodes accepted")
	}
	_ = a.SetNodes(128)
	if _, _, err := a.RunRequest(); err == nil {
		t.Error("over-wide job accepted (queue MaxNodes=64)")
	}
	_ = a.SetNodes(16)
	a.SetWallTime(8 * time.Hour)
	if _, _, err := a.RunRequest(); err == nil {
		t.Error("over-long job accepted (queue cap 4h)")
	}
	a.SetWallTime(time.Hour)
	a.SetArguments([]string{"-v"})
	a.SetInputDocument("deck")
	host, spec, err := a.RunRequest()
	if err != nil {
		t.Fatal(err)
	}
	if host != "bluehorizon.sdsc.edu" || spec.Executable != "/usr/local/bin/gaussian" ||
		spec.Queue != "normal" || spec.Nodes != 16 || spec.Stdin != "deck" {
		t.Errorf("spec = %+v", spec)
	}
	// Default walltime falls back to the queue bound.
	a2 := NewAdapter(d)
	_ = a2.ChooseHost("modi4.ncsa.uiuc.edu")
	_, spec2, err := a2.RunRequest()
	if err != nil || spec2.WallTime != 2*time.Hour {
		t.Errorf("defaulted walltime = %s, %v", spec2.WallTime, err)
	}
}

// TestAdapterVersusAccessorExplosion pins Section 5.2: the adapter facade
// is an order of magnitude smaller than the generated accessor interface.
func TestAdapterVersusAccessorExplosion(t *testing.T) {
	// Generated accessors for the full application schema (via databind on
	// a representative descriptor schema shape).
	schema := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="application"><xs:complexType><xs:sequence>
	    <xs:element name="name" type="xs:string"/>
	    <xs:element name="version" type="xs:string"/>
	    <xs:element name="description" type="xs:string"/>
	    <xs:element name="flag" type="xs:string" maxOccurs="unbounded" minOccurs="0"/>
	    <xs:element name="input" type="xs:string"/>
	    <xs:element name="output" type="xs:string"/>
	    <xs:element name="error" type="xs:string"/>
	    <xs:element name="service" type="xs:string" maxOccurs="unbounded" minOccurs="0"/>
	    <xs:element name="host"><xs:complexType><xs:sequence>
	      <xs:element name="dns" type="xs:string"/>
	      <xs:element name="ip" type="xs:string"/>
	      <xs:element name="executable" type="xs:string"/>
	      <xs:element name="workDir" type="xs:string"/>
	      <xs:element name="queue"><xs:complexType><xs:sequence>
	        <xs:element name="scheduler" type="xs:string"/>
	        <xs:element name="queueName" type="xs:string"/>
	        <xs:element name="maxNodes" type="xs:int"/>
	        <xs:element name="maxWallTimeSeconds" type="xs:int"/>
	      </xs:sequence></xs:complexType></xs:element>
	    </xs:sequence></xs:complexType></xs:element>
	  </xs:sequence></xs:complexType></xs:element>
	</xs:schema>`
	s, err := databind.ParseSchema(schema)
	if err != nil {
		t.Fatal(err)
	}
	generated := len(databind.AccessorNames(s.Root("application")))
	facade := len(AdapterMethodNames())
	if generated < 4*facade {
		t.Errorf("generated=%d facade=%d: facade should be at least 4x smaller", generated, facade)
	}
}

func testManager(t *testing.T) (*Manager, *grid.Grid) {
	t.Helper()
	g := grid.NewTestbed()
	g.Authorize("mock@SDSC.EDU")
	p := core.NewProvider("ssp", "loopback://grid")
	p.MustRegister(jobsub.NewGlobusrunService(g, "mock@SDSC.EDU"))
	gc := jobsub.NewGlobusrunClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://grid/Globusrun")
	m := NewManager(gc)
	if err := m.Register(gaussianDescriptor()); err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestLifecycleSynchronous(t *testing.T) {
	m, _ := testManager(t)
	if names := m.Applications(); len(names) != 1 || names[0] != "Gaussian" {
		t.Fatalf("apps = %v", names)
	}
	inst, err := m.Prepare("Gaussian", "bluehorizon.sdsc.edu", 4, time.Hour, nil,
		"# HF\nbasis=4\n\nwater\n")
	if err != nil {
		t.Fatal(err)
	}
	if inst.State != StatePrepared {
		t.Fatalf("state = %s", inst.State)
	}
	if err := m.RunSynchronously(inst.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Instance(inst.ID)
	if got.State != StateCompleted || !strings.Contains(got.Stdout, "Normal termination") {
		t.Errorf("inst = %+v", got)
	}
	// Double run rejected.
	if err := m.RunSynchronously(inst.ID); err == nil {
		t.Error("re-run of completed instance accepted")
	}
	// Archive without SRB stores in memory.
	loc, err := m.Archive(inst.ID)
	if err != nil || !strings.HasPrefix(loc, "memory:") {
		t.Errorf("archive = %q, %v", loc, err)
	}
	got, _ = m.Instance(inst.ID)
	if got.State != StateArchived {
		t.Errorf("state = %s", got.State)
	}
	// Instance document carries run metadata.
	el := got.Element()
	if el.ChildText("application") != "Gaussian" || el.ChildText("outputLocation") == "" {
		t.Errorf("instance doc:\n%s", el.RenderIndent())
	}
}

func TestLifecycleAsyncWithPoll(t *testing.T) {
	m, g := testManager(t)
	inst, err := m.Prepare("Gaussian", "bluehorizon.sdsc.edu", 2, time.Hour, nil, "# HF\nbasis=20\n\nbig\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(inst.ID); err != nil {
		t.Fatal(err)
	}
	state, err := m.Poll(inst.ID)
	if err != nil || (state != StateQueued && state != StateRunning) {
		t.Errorf("state after submit = %s, %v", state, err)
	}
	h, _ := g.Host("bluehorizon.sdsc.edu")
	h.Scheduler.Drain()
	state, err = m.Poll(inst.ID)
	if err != nil || state != StateCompleted {
		t.Errorf("final state = %s, %v", state, err)
	}
	// Poll on finished instance is a no-op.
	state, _ = m.Poll(inst.ID)
	if state != StateCompleted {
		t.Errorf("idempotent poll = %s", state)
	}
	// Submit from wrong state rejected.
	if err := m.Submit(inst.ID); err == nil {
		t.Error("re-submit accepted")
	}
}

func TestPrepareErrors(t *testing.T) {
	m, _ := testManager(t)
	if _, err := m.Prepare("Unknown", "x", 1, 0, nil, ""); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := m.Prepare("Gaussian", "nowhere.edu", 1, 0, nil, ""); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := m.Prepare("Gaussian", "bluehorizon.sdsc.edu", 1000, 0, nil, ""); err == nil {
		t.Error("over-wide request accepted")
	}
	if err := m.Register(gaussianDescriptor()); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := m.Archive("ghost"); err == nil {
		t.Error("archive of unknown instance accepted")
	}
}

func TestArchiveThroughSRB(t *testing.T) {
	m, _ := testManager(t)
	// SRB service behind SOAP.
	broker := srb.NewBroker("sdsc")
	home := broker.CreateUser("mock")
	_ = broker.Mkdir("mock", home+"/archives")
	sp := core.NewProvider("srb-ssp", "loopback://srb")
	sp.MustRegister(srbws.NewService(broker, "mock"))
	m.SRB = srbws.NewClient(&soap.LoopbackTransport{Handler: sp.Dispatch}, "loopback://srb/SRBService")
	m.ArchiveCollection = home + "/archives"

	inst, _ := m.Prepare("Gaussian", "bluehorizon.sdsc.edu", 1, time.Hour, nil, "# HF\nbasis=3\n\nx\n")
	if err := m.RunSynchronously(inst.ID); err != nil {
		t.Fatal(err)
	}
	loc, err := m.Archive(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The output is retrievable from SRB at the descriptor-bound location.
	data, err := broker.Sget("mock", loc)
	if err != nil || !strings.Contains(data, "SCF Done") {
		t.Errorf("archived output = %q, %v", data, err)
	}
	// Archive from wrong state.
	inst2, _ := m.Prepare("Gaussian", "bluehorizon.sdsc.edu", 1, time.Hour, nil, "x")
	if _, err := m.Archive(inst2.ID); err == nil {
		t.Error("archive of prepared instance accepted")
	}
}

func TestSOAPServiceFullFlow(t *testing.T) {
	m, g := testManager(t)
	p := core.NewProvider("app-ssp", "loopback://app")
	p.MustRegister(NewService(m))
	cl := core.NewClient(&soap.LoopbackTransport{Handler: p.Dispatch}, "loopback://app/ApplicationService", Contract())

	names, err := cl.CallStrings("listApplications")
	if err != nil || len(names) != 1 {
		t.Fatalf("apps = %v, %v", names, err)
	}
	desc, err := cl.CallXML("describeApplication", soap.Str("name", "Gaussian"))
	if err != nil || desc.FindText("basicInformation/name") != "Gaussian" {
		t.Fatalf("describe = %v, %v", desc, err)
	}
	id, err := cl.CallText("prepare",
		soap.Str("application", "Gaussian"), soap.Str("host", "modi4.ncsa.uiuc.edu"),
		soap.Int("nodes", 2), soap.Int("wallTimeSeconds", 3600),
		soap.StrArray("arguments", nil), soap.Str("input", "# MP2\nbasis=5\n\nmol\n"))
	if err != nil {
		t.Fatal(err)
	}
	contact, err := cl.CallText("submit", soap.Str("instanceID", id))
	if err != nil || !strings.Contains(contact, "modi4") {
		t.Fatalf("submit = %q, %v", contact, err)
	}
	h, _ := g.Host("modi4.ncsa.uiuc.edu")
	h.Scheduler.Drain()
	state, err := cl.CallText("poll", soap.Str("instanceID", id))
	if err != nil || state != "COMPLETED" {
		t.Errorf("poll = %q, %v", state, err)
	}
	instDoc, err := cl.CallXML("getInstance", soap.Str("instanceID", id))
	if err != nil || instDoc.ChildText("state") != "COMPLETED" {
		t.Errorf("instance = %v, %v", instDoc, err)
	}
	loc, err := cl.CallText("archive", soap.Str("instanceID", id))
	if err != nil || loc == "" {
		t.Errorf("archive = %q, %v", loc, err)
	}
	ids, err := cl.CallStrings("listInstances")
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Errorf("instances = %v, %v", ids, err)
	}
	// Errors carry portal codes.
	_, err = cl.CallText("describeApplication", soap.Str("name", "Ghost"))
	if pe := soap.AsPortalError(err); pe == nil || pe.Code != soap.ErrCodeNoSuchResource {
		t.Errorf("err = %v", err)
	}
	_, err = cl.CallText("run", soap.Str("instanceID", id))
	if pe := soap.AsPortalError(err); pe == nil {
		t.Errorf("run from archived err = %v", err)
	}
}
